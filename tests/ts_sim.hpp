// ts_sim.hpp — test-support harness: concrete cycle-by-cycle simulation of
// a TransitionSystem via the term evaluator.
//
// Used by the processor and QED-module tests to cross-check the symbolic
// pipeline against the golden ISS without any solver in the loop: states
// are held as concrete BitVecs, each step() evaluates every next-state
// function under the current state + supplied inputs.
#pragma once

#include <cassert>

#include "isa/semantics.hpp"
#include "proc/processor.hpp"
#include "smt/eval.hpp"
#include "ts/transition_system.hpp"

namespace sepe::testing {

/// Concrete simulator for a complete TransitionSystem.
class TsSim {
 public:
  explicit TsSim(const ts::TransitionSystem& ts) : ts_(ts) {
    assert(ts.complete());
    // States with init terms start there (init terms are input-free);
    // everything else defaults to zero and may be overridden via
    // set_state before the first step.
    for (smt::TermRef s : ts.states()) {
      const smt::TermRef init = ts.init_of(s);
      state_[s] = init != smt::kNullTerm
                      ? smt::eval_term(ts.mgr(), init, {})
                      : BitVec::zeros(ts.mgr().width(s));
    }
  }

  void set_state(smt::TermRef s, const BitVec& v) {
    assert(ts_.is_state(s) && v.width() == ts_.mgr().width(s));
    state_[s] = v;
  }

  const BitVec& state(smt::TermRef s) const { return state_.at(s); }

  /// Evaluate any term under the current state and the given inputs.
  BitVec eval(smt::TermRef t, const smt::Assignment& inputs = {}) const {
    smt::Assignment combined = state_;
    for (const auto& [k, v] : inputs) combined[k] = v;
    return smt::eval_term(ts_.mgr(), t, combined);
  }

  /// Do all step constraints hold under the current state + inputs?
  bool constraints_ok(const smt::Assignment& inputs) const {
    for (smt::TermRef c : ts_.constraints())
      if (!eval(c, inputs).is_true()) return false;
    return true;
  }

  /// Advance one cycle.
  void step(const smt::Assignment& inputs) {
    smt::Assignment combined = state_;
    for (const auto& [k, v] : inputs) combined[k] = v;
    smt::Evaluator ev(ts_.mgr());
    smt::Assignment next;
    for (smt::TermRef s : ts_.states()) next[s] = ev.eval(ts_.next_of(s), combined);
    state_ = std::move(next);
  }

 private:
  const ts::TransitionSystem& ts_;
  smt::Assignment state_;
};

/// Input bundle driving a ProcModel for one cycle with `inst`, mirroring
/// how the QED modules extend architectural immediates onto the datapath.
inline smt::Assignment proc_drive(const proc::ProcModel& m,
                                  const isa::Instruction& inst) {
  const unsigned xlen = m.config.xlen;
  BitVec imm = BitVec::zeros(xlen);
  if (isa::opcode_format(inst.op) == isa::Format::Shift) {
    imm = BitVec(xlen, static_cast<std::uint64_t>(inst.imm) & 31);
  } else if (!isa::is_rtype(inst.op) && inst.op != isa::Opcode::NOP) {
    imm = isa::imm_to_xlen(inst.imm, xlen);
  }
  return smt::Assignment{
      {m.in_valid, BitVec::boolean(true)},
      {m.in_op, BitVec(proc::kOpcodeBits, static_cast<std::uint64_t>(inst.op))},
      {m.in_rd, BitVec(5, inst.rd)},
      {m.in_rs1, BitVec(5, inst.rs1)},
      {m.in_rs2, BitVec(5, inst.rs2)},
      {m.in_imm, imm},
  };
}

/// Input bundle for an idle (bubble) cycle.
inline smt::Assignment proc_bubble(const proc::ProcModel& m) {
  return smt::Assignment{
      {m.in_valid, BitVec::boolean(false)},
      {m.in_op, BitVec(proc::kOpcodeBits, 0)},
      {m.in_rd, BitVec(5, 0)},
      {m.in_rs1, BitVec(5, 0)},
      {m.in_rs2, BitVec(5, 0)},
      {m.in_imm, BitVec::zeros(m.config.xlen)},
  };
}

/// Run a whole program through the pipeline (one instruction per cycle,
/// then drain) on a fresh simulator whose registers/memory start from the
/// given initial values.
inline void proc_run_program(TsSim& sim, const proc::ProcModel& m,
                             const isa::Program& prog) {
  for (const isa::Instruction& inst : prog) sim.step(proc_drive(m, inst));
  sim.step(proc_bubble(m));
  sim.step(proc_bubble(m));  // two bubbles drain the 3-stage pipeline
}

}  // namespace sepe::testing
