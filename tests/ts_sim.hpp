// ts_sim.hpp — test-support glue over the library's concrete
// TransitionSystem simulator (src/sim/ts_sim.hpp, promoted there for the
// witness pipeline) plus the processor driving helpers the proc/QED tests
// share.
#pragma once

#include "isa/semantics.hpp"
#include "proc/processor.hpp"
#include "sim/ts_sim.hpp"
#include "smt/eval.hpp"
#include "ts/transition_system.hpp"

namespace sepe::testing {

using sim::TsSim;

/// Input bundle driving a ProcModel for one cycle with `inst`, mirroring
/// how the QED modules extend architectural immediates onto the datapath.
inline smt::Assignment proc_drive(const proc::ProcModel& m,
                                  const isa::Instruction& inst) {
  const unsigned xlen = m.config.xlen;
  BitVec imm = BitVec::zeros(xlen);
  if (isa::opcode_format(inst.op) == isa::Format::Shift) {
    imm = BitVec(xlen, static_cast<std::uint64_t>(inst.imm) & 31);
  } else if (!isa::is_rtype(inst.op) && inst.op != isa::Opcode::NOP) {
    imm = isa::imm_to_xlen(inst.imm, xlen);
  }
  return smt::Assignment{
      {m.in_valid, BitVec::boolean(true)},
      {m.in_op, BitVec(proc::kOpcodeBits, static_cast<std::uint64_t>(inst.op))},
      {m.in_rd, BitVec(5, inst.rd)},
      {m.in_rs1, BitVec(5, inst.rs1)},
      {m.in_rs2, BitVec(5, inst.rs2)},
      {m.in_imm, imm},
  };
}

/// Input bundle for an idle (bubble) cycle.
inline smt::Assignment proc_bubble(const proc::ProcModel& m) {
  return smt::Assignment{
      {m.in_valid, BitVec::boolean(false)},
      {m.in_op, BitVec(proc::kOpcodeBits, 0)},
      {m.in_rd, BitVec(5, 0)},
      {m.in_rs1, BitVec(5, 0)},
      {m.in_rs2, BitVec(5, 0)},
      {m.in_imm, BitVec::zeros(m.config.xlen)},
  };
}

/// Run a whole program through the pipeline (one instruction per cycle,
/// then drain) on a fresh simulator whose registers/memory start from the
/// given initial values.
inline void proc_run_program(TsSim& sim, const proc::ProcModel& m,
                             const isa::Program& prog) {
  for (const isa::Instruction& inst : prog) sim.step(proc_drive(m, inst));
  sim.step(proc_bubble(m));
  sim.step(proc_bubble(m));  // two bubbles drain the 3-stage pipeline
}

}  // namespace sepe::testing
