// Injected-failure battery for the multi-host campaign dispatcher: a
// scripted FakeLauncher stands in for the process transport so every
// failure mode is deterministic — crashed attempts retry from their
// checkpoint journals, stragglers are stolen from journal snapshots,
// the first completion of a shard wins and late duplicates are
// discarded, retry budgets are enforced, and a usage error is fatal
// rather than retried. Whatever the fault schedule, the merged report
// must stay byte-identical to an unsharded run (the same contract the
// shard/merge layer pins). LocalProcessLauncher is exercised against
// real /bin/sh children at the bottom.
#include <gtest/gtest.h>

#include <chrono>
#include <csignal>
#include <deque>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/dispatch.hpp"
#include "engine/report_io.hpp"
#include "engine/shard.hpp"

namespace sepe::engine {
namespace {

using smt::TermRef;

/// Counter that increments by an input-controlled step: falsified at
/// depth `target` when target <= max_bound, bound-clean otherwise.
JobSpec counter_job(const std::string& name, unsigned width, std::uint64_t target,
                    const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width, target](ts::TransitionSystem& ts, std::string*) {
    smt::TermManager& mgr = ts.mgr();
    const TermRef cnt = ts.add_state("cnt", width);
    const TermRef inc = ts.add_input("inc", 1);
    ts.set_init(cnt, mgr.mk_const(width, 0));
    ts.set_next(cnt, mgr.mk_ite(inc, mgr.mk_add(cnt, mgr.mk_const(width, 1)), cnt));
    ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(width, target)), "cnt-target");
    return true;
  };
  return job;
}

/// Frozen register: proved by k-induction at k = 1.
JobSpec frozen_job(const std::string& name, unsigned width, const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width](ts::TransitionSystem& ts, std::string*) {
    smt::TermManager& mgr = ts.mgr();
    const TermRef x = ts.add_state("x", width);
    ts.set_init(x, mgr.mk_const(width, 0));
    ts.set_next(x, x);
    ts.add_bad(mgr.mk_eq(x, mgr.mk_const(width, 1)), "x-one");
    return true;
  };
  return job;
}

CampaignSpec small_spec() {
  JobBudget budget;
  budget.max_bound = 6;
  budget.max_k = 2;
  CampaignSpec spec;
  spec.seed = 17;
  for (unsigned t = 1; t <= 4; ++t)
    spec.jobs.push_back(counter_job("cnt-" + std::to_string(t), 5 + t % 2, t, budget));
  spec.jobs.push_back(frozen_job("frozen-4", 4, budget));
  spec.jobs.push_back(counter_job("clean-30", 6, 30, budget));
  return spec;
}

/// What a real worker would have produced for each shard, precomputed
/// in-process so the fake transport can replay (or truncate) it.
struct ShardArtifacts {
  std::string stable_report;  // the worker's --stable-json --json output
  std::string full_journal;   // its completed checkpoint journal
};

/// Scripted behavior of one fake worker attempt.
struct Behavior {
  enum class Kind {
    Complete,            // journal + report written, exit 0
    CompleteAfterPolls,  // same, but only exits on poll #polls_until_exit
    CrashPartial,        // journal truncated to partial_jobs, then signal 9
    CrashAfterPolls,     // ditto, but crashes only on poll #polls_until_exit
    HangPartial,         // journal truncated to partial_jobs, Running forever
    ExitUsage,           // exit 2 without writing anything
    ExitFailure,         // exit 1 without writing anything (e.g. a
                         // checkpoint refusal — see FORMATS.md)
  };
  Kind kind = Kind::Complete;
  unsigned partial_jobs = 0;
  unsigned polls_until_exit = 0;
  /// When nonzero: assert the dispatcher seeded this attempt's
  /// checkpoint with at least this many journaled jobs (the resume /
  /// steal-snapshot contract).
  unsigned expect_resumed = 0;
};

/// A WorkerLauncher that interprets the dispatcher's command lines and
/// replays precomputed shard artifacts per a per-shard script. Single
/// threaded and deterministic: "processes" advance only when polled.
class FakeLauncher final : public WorkerLauncher {
 public:
  explicit FakeLauncher(const std::vector<ShardArtifacts>* artifacts)
      : artifacts_(artifacts) {}

  std::map<unsigned, std::deque<Behavior>> script;
  std::vector<unsigned> launches;  // shard index per launch, in order
  unsigned terminations = 0;

  bool terminated(std::size_t launch_index) const {
    return procs_.at(launch_index).terminated;
  }

  long launch(const std::vector<std::string>& argv, std::string* error) override {
    Proc proc;
    if (!parse_command(argv, &proc)) {
      *error = "fake launcher: unparseable worker command";
      return -1;
    }
    auto& queue = script[proc.shard];
    if (!queue.empty()) {
      proc.behavior = queue.front();
      queue.pop_front();
    }
    if (proc.behavior.expect_resumed > 0) {
      const auto text = read_text_file(proc.checkpoint_path);
      EXPECT_TRUE(text.has_value())
          << "attempt for shard " << proc.shard << " was not seeded with a journal";
      if (text) {
        CampaignReport journal;
        std::string parse_error;
        EXPECT_TRUE(parse_report(*text, &journal, &parse_error)) << parse_error;
        EXPECT_GE(journal.jobs.size(), proc.behavior.expect_resumed);
      }
    }
    switch (proc.behavior.kind) {
      case Behavior::Kind::Complete:
      case Behavior::Kind::CompleteAfterPolls: {
        const ShardArtifacts& art = (*artifacts_)[proc.shard];
        if (!art.full_journal.empty())
          write_text_file_atomic(proc.checkpoint_path, art.full_journal);
        write_text_file_atomic(proc.report_path, art.stable_report);
        break;
      }
      case Behavior::Kind::CrashPartial:
      case Behavior::Kind::CrashAfterPolls:
      case Behavior::Kind::HangPartial:
        write_text_file_atomic(
            proc.checkpoint_path,
            truncated_journal(proc.shard, proc.behavior.partial_jobs));
        break;
      case Behavior::Kind::ExitUsage:
      case Behavior::Kind::ExitFailure: break;
    }
    launches.push_back(proc.shard);
    procs_.push_back(std::move(proc));
    return static_cast<long>(procs_.size()) - 1;
  }

  Exit poll(long handle) override {
    Proc& proc = procs_.at(static_cast<std::size_t>(handle));
    ++proc.polls;
    switch (proc.behavior.kind) {
      case Behavior::Kind::Complete: return {Exit::Status::Exited, 0};
      case Behavior::Kind::CompleteAfterPolls:
        if (proc.polls >= proc.behavior.polls_until_exit)
          return {Exit::Status::Exited, 0};
        return {Exit::Status::Running, 0};
      case Behavior::Kind::CrashPartial: return {Exit::Status::Signalled, SIGKILL};
      case Behavior::Kind::CrashAfterPolls:
        if (proc.polls >= proc.behavior.polls_until_exit)
          return {Exit::Status::Signalled, SIGKILL};
        return {Exit::Status::Running, 0};
      case Behavior::Kind::HangPartial: return {Exit::Status::Running, 0};
      case Behavior::Kind::ExitUsage: return {Exit::Status::Exited, 2};
      case Behavior::Kind::ExitFailure: return {Exit::Status::Exited, 1};
    }
    return {Exit::Status::Lost, 0};
  }

  void terminate(long handle) override {
    procs_.at(static_cast<std::size_t>(handle)).terminated = true;
    ++terminations;
  }

 private:
  struct Proc {
    unsigned shard = 0;
    std::string checkpoint_path;
    std::string report_path;
    Behavior behavior;
    unsigned polls = 0;
    bool terminated = false;
  };

  static bool parse_command(const std::vector<std::string>& argv, Proc* out) {
    ShardSpec shard;
    std::string error;
    for (std::size_t i = 0; i + 1 < argv.size(); ++i) {
      if (argv[i] == "--shard") {
        if (!parse_shard(argv[i + 1], &shard, &error)) return false;
        out->shard = shard.index;
      } else if (argv[i] == "--checkpoint") {
        out->checkpoint_path = argv[i + 1];
      } else if (argv[i] == "--json") {
        out->report_path = argv[i + 1];
      }
    }
    return !out->checkpoint_path.empty() && !out->report_path.empty();
  }

  std::string truncated_journal(unsigned shard, unsigned keep) const {
    CampaignReport journal;
    std::string error;
    EXPECT_TRUE(parse_report((*artifacts_)[shard].full_journal, &journal, &error))
        << error;
    if (journal.jobs.size() > keep) journal.jobs.resize(keep);
    return journal.to_json(/*include_timing=*/true);
  }

  const std::vector<ShardArtifacts>* artifacts_;
  std::vector<Proc> procs_;
};

class DispatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    work_ = ::testing::TempDir() + "dispatch_test_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(work_);
    std::filesystem::create_directories(work_);
    spec_ = small_spec();
    CampaignOptions sequential;
    sequential.threads = 1;
    reference_ = run_campaign(spec_, sequential).to_json(/*include_timing=*/false);
  }

  void TearDown() override { std::filesystem::remove_all(work_); }

  /// Run every shard in-process once to capture the artifacts the fake
  /// transport replays.
  void prepare_artifacts(unsigned shards) {
    artifacts_.assign(shards, {});
    for (unsigned i = 0; i < shards; ++i) {
      ShardRunOptions options;
      options.pool.threads = 1;
      options.shard = ShardSpec{i, shards};
      options.checkpoint_path = work_ + "/prep-" + std::to_string(i) + ".json";
      std::string error;
      const CampaignReport report = run_sharded(spec_, options, &error);
      ASSERT_TRUE(error.empty()) << error;
      artifacts_[i].stable_report = report.to_json(/*include_timing=*/false);
      // An empty shard (more shards than jobs) journals nothing.
      if (const auto journal = read_text_file(options.checkpoint_path))
        artifacts_[i].full_journal = *journal;
    }
  }

  DispatchOptions base_options(FakeLauncher* launcher, unsigned workers,
                               unsigned shards) {
    DispatchOptions options;
    options.worker_command = {"fake-sepe-run", "--bound", "6"};
    options.work_dir = work_;
    options.workers = workers;
    options.shards = shards;
    options.launcher = launcher;
    options.poll_seconds = 0.0;
    options.steal_after_seconds = 0.0;  // fake time: steal on the next pass
    options.on_event = [this](const std::string& line) { events_.push_back(line); };
    return options;
  }

  bool any_event_contains(const std::string& needle) const {
    for (const std::string& line : events_)
      if (line.find(needle) != std::string::npos) return true;
    return false;
  }

  std::string work_;
  CampaignSpec spec_;
  std::string reference_;
  std::vector<ShardArtifacts> artifacts_;
  std::vector<std::string> events_;
};

TEST_F(DispatchTest, AllShardsCompleteAndMergeMatchesReference) {
  prepare_artifacts(3);
  FakeLauncher launcher(&artifacts_);
  const DispatchResult result = run_dispatch(base_options(&launcher, 2, 3));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.merged.to_json(/*include_timing=*/false), reference_);
  EXPECT_EQ(result.launches, 3u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.steals, 0u);
  EXPECT_EQ(result.duplicates, 0u);
}

TEST_F(DispatchTest, MoreShardsThanJobsStillMergesByteIdentically) {
  prepare_artifacts(8);  // 6 jobs over 8 shards: two legs are empty
  FakeLauncher launcher(&artifacts_);
  const DispatchResult result = run_dispatch(base_options(&launcher, 3, 8));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.merged.to_json(/*include_timing=*/false), reference_);
  EXPECT_EQ(result.launches, 8u);
}

TEST_F(DispatchTest, CrashedAttemptRetriesFromItsJournal) {
  prepare_artifacts(2);
  FakeLauncher launcher(&artifacts_);
  // Shard 0 journals two jobs, crashes; the retry must be seeded with
  // both of them before completing.
  launcher.script[0] = {Behavior{Behavior::Kind::CrashPartial, 2, 0, 0},
                        Behavior{Behavior::Kind::Complete, 0, 0, 2}};
  DispatchOptions options = base_options(&launcher, 1, 2);
  options.retries = 1;
  const DispatchResult result = run_dispatch(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.merged.to_json(/*include_timing=*/false), reference_);
  EXPECT_EQ(result.failures, 1u);
  EXPECT_EQ(result.launches, 3u);  // shard 0 twice, shard 1 once
  EXPECT_TRUE(any_event_contains("crashed (signal 9)"));
  EXPECT_TRUE(any_event_contains("resuming 2 journaled jobs"));
}

TEST_F(DispatchTest, StragglerIsStolenFromAJournalSnapshotAndLoserTerminated) {
  prepare_artifacts(2);
  FakeLauncher launcher(&artifacts_);
  // Shard 0 journals one job and hangs; once shard 1 finishes, the idle
  // worker must steal shard 0 (resuming the snapshot), win, and the
  // hung original must be put down.
  launcher.script[0] = {Behavior{Behavior::Kind::HangPartial, 1, 0, 0},
                        Behavior{Behavior::Kind::Complete, 0, 0, 1}};
  const DispatchResult result = run_dispatch(base_options(&launcher, 2, 2));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.merged.to_json(/*include_timing=*/false), reference_);
  EXPECT_EQ(result.steals, 1u);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_EQ(result.duplicates, 0u);
  ASSERT_EQ(launcher.launches.size(), 3u);
  EXPECT_EQ(launcher.launches[2], 0u);  // the steal targets the straggler
  EXPECT_TRUE(launcher.terminated(0));  // the hung original attempt
  EXPECT_TRUE(any_event_contains("terminated (shard already won)"));
}

TEST_F(DispatchTest, FirstCompletionWinsAndTheDuplicateIsDiscarded) {
  prepare_artifacts(2);
  FakeLauncher launcher(&artifacts_);
  // Shard 0's original attempt finishes on its second poll — the same
  // scheduler pass in which the freshly-stolen copy finishes. The
  // original (older) attempt wins the photo finish; the thief's
  // completion is reconciled away as a duplicate.
  launcher.script[0] = {Behavior{Behavior::Kind::CompleteAfterPolls, 0, 2, 0},
                        Behavior{Behavior::Kind::Complete, 0, 0, 0}};
  const DispatchResult result = run_dispatch(base_options(&launcher, 2, 2));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.merged.to_json(/*include_timing=*/false), reference_);
  EXPECT_EQ(result.steals, 1u);
  EXPECT_EQ(result.duplicates, 1u);
  EXPECT_TRUE(any_event_contains("finished second; discarded"));
}

TEST_F(DispatchTest, AStolenAttemptsCrashDoesNotConsumeTheRetryBudget) {
  prepare_artifacts(2);
  FakeLauncher launcher(&artifacts_);
  // Shard 0's original attempt lingers long enough to be stolen, then
  // crashes; the thief crashes too. Two failed attempts — but zero
  // *retries* have been spent, so with retries=1 the dispatcher must
  // relaunch from the journal and finish, not abort with an exhausted
  // retry budget.
  launcher.script[0] = {Behavior{Behavior::Kind::CrashAfterPolls, 1, 3, 0},
                        Behavior{Behavior::Kind::CrashAfterPolls, 1, 3, 0},
                        Behavior{Behavior::Kind::Complete, 0, 0, 1}};
  DispatchOptions options = base_options(&launcher, 2, 2);
  options.retries = 1;
  const DispatchResult result = run_dispatch(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.merged.to_json(/*include_timing=*/false), reference_);
  EXPECT_EQ(result.failures, 2u);
  EXPECT_FALSE(any_event_contains("retry budget"));
}

TEST_F(DispatchTest, RetryBudgetExhaustionFailsTheDispatch) {
  prepare_artifacts(2);
  FakeLauncher launcher(&artifacts_);
  launcher.script[0] = {Behavior{Behavior::Kind::CrashPartial, 1, 0, 0},
                        Behavior{Behavior::Kind::CrashPartial, 1, 0, 0}};
  DispatchOptions options = base_options(&launcher, 2, 2);
  options.retries = 1;
  const DispatchResult result = run_dispatch(options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("shard 0/2"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("retry budget"), std::string::npos) << result.error;
  EXPECT_EQ(result.failures, 2u);
}

TEST_F(DispatchTest, UsageErrorIsFatalNotRetried) {
  prepare_artifacts(2);
  FakeLauncher launcher(&artifacts_);
  launcher.script[0] = {Behavior{Behavior::Kind::ExitUsage, 0, 0, 0}};
  DispatchOptions options = base_options(&launcher, 1, 2);
  options.retries = 5;
  const DispatchResult result = run_dispatch(options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("rejected the command line"), std::string::npos)
      << result.error;
  // Never relaunched: a usage error is deterministic.
  EXPECT_EQ(launcher.launches.size(), 1u);
}

TEST_F(DispatchTest, RefusedPreexistingJournalIsDiscardedBeforeTheRetry) {
  prepare_artifacts(2);
  // A reused work dir left a journal from some other campaign at the
  // attempt-1 checkpoint path; the worker refuses it (exit 1 without
  // touching it). The retry must run clean — the stale journal is
  // discarded, not copied into every subsequent attempt.
  const std::string stale = work_ + "/shard-0.a1.ckpt.json";
  ASSERT_TRUE(write_text_file_atomic(stale, artifacts_[0].full_journal));
  FakeLauncher launcher(&artifacts_);
  launcher.script[0] = {Behavior{Behavior::Kind::ExitFailure, 0, 0, 0},
                        Behavior{Behavior::Kind::Complete, 0, 0, 0}};
  DispatchOptions options = base_options(&launcher, 1, 2);
  options.retries = 1;
  const DispatchResult result = run_dispatch(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.merged.to_json(/*include_timing=*/false), reference_);
  EXPECT_TRUE(any_event_contains("discarded the pre-existing journal"));
  EXPECT_FALSE(std::filesystem::exists(stale));
}

TEST_F(DispatchTest, MissingWorkerBinaryFailsFastWithoutRetries) {
  // Real local launcher: exec failure (exit 127) is deterministic and
  // must not be retried per shard.
  DispatchOptions options;
  options.worker_command = {"/no/such/binary-anywhere"};
  options.work_dir = work_;
  options.workers = 1;
  options.shards = 2;
  options.retries = 5;
  options.poll_seconds = 0.005;
  const DispatchResult result = run_dispatch(options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cannot be executed"), std::string::npos)
      << result.error;
  EXPECT_EQ(result.launches, 1u);
}

TEST_F(DispatchTest, StealingCanBeDisabled) {
  prepare_artifacts(3);
  FakeLauncher launcher(&artifacts_);
  DispatchOptions options = base_options(&launcher, 2, 3);
  options.steal = false;
  const DispatchResult result = run_dispatch(options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.merged.to_json(/*include_timing=*/false), reference_);
  EXPECT_EQ(result.steals, 0u);
}

TEST(DispatchValidation, RejectsAnEmptyConfiguration) {
  DispatchResult result = run_dispatch(DispatchOptions{});
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(result.error.empty());

  DispatchOptions no_dir;
  no_dir.worker_command = {"sepe-run"};
  no_dir.workers = 1;
  result = run_dispatch(no_dir);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("work directory"), std::string::npos);
}

// --- the real process transport ---

WorkerLauncher::Exit wait_for_exit(WorkerLauncher& launcher, long handle) {
  for (int i = 0; i < 4000; ++i) {
    const WorkerLauncher::Exit status = launcher.poll(handle);
    if (status.status != WorkerLauncher::Exit::Status::Running) return status;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return {WorkerLauncher::Exit::Status::Lost, 0};
}

TEST(LocalProcessLauncherTest, ReportsExitCodesAndSignals) {
  LocalProcessLauncher launcher;
  std::string error;

  const long ok = launcher.launch({"/bin/sh", "-c", "exit 0"}, &error);
  ASSERT_GE(ok, 0) << error;
  WorkerLauncher::Exit status = wait_for_exit(launcher, ok);
  EXPECT_EQ(status.status, WorkerLauncher::Exit::Status::Exited);
  EXPECT_EQ(status.code, 0);

  const long seven = launcher.launch({"/bin/sh", "-c", "exit 7"}, &error);
  ASSERT_GE(seven, 0) << error;
  status = wait_for_exit(launcher, seven);
  EXPECT_EQ(status.status, WorkerLauncher::Exit::Status::Exited);
  EXPECT_EQ(status.code, 7);

  const long killed = launcher.launch({"/bin/sh", "-c", "kill -KILL $$"}, &error);
  ASSERT_GE(killed, 0) << error;
  status = wait_for_exit(launcher, killed);
  EXPECT_EQ(status.status, WorkerLauncher::Exit::Status::Signalled);
  EXPECT_EQ(status.code, SIGKILL);

  // exec failure surfaces as the shell's command-not-found status.
  const long missing = launcher.launch({"/no/such/binary-anywhere"}, &error);
  ASSERT_GE(missing, 0) << error;
  status = wait_for_exit(launcher, missing);
  EXPECT_EQ(status.status, WorkerLauncher::Exit::Status::Exited);
  EXPECT_EQ(status.code, 127);
}

TEST(LocalProcessLauncherTest, TerminateReapsARunningWorker) {
  LocalProcessLauncher launcher;
  std::string error;
  // `exec` so the launched pid IS the sleep — terminating must not
  // leave an orphan holding inherited pipes open (a backgrounded
  // grandchild would stall any harness reading this test's output).
  const long sleeper = launcher.launch({"/bin/sh", "-c", "exec sleep 600"}, &error);
  ASSERT_GE(sleeper, 0) << error;
  EXPECT_EQ(launcher.poll(sleeper).status, WorkerLauncher::Exit::Status::Running);
  // Must kill and reap promptly (blocks until the child is gone).
  launcher.terminate(sleeper);
}

}  // namespace
}  // namespace sepe::engine
