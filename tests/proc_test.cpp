// Tests for the pipelined processor model (the DUV) and the mutation
// catalogs. The core property: the pipeline, simulated concretely cycle
// by cycle, computes exactly what the golden ISS computes — for random
// programs including back-to-back dependent instructions (forwarding) and
// memory traffic. Mutations must break the targeted behaviour and only
// that behaviour.
#include <gtest/gtest.h>

#include "proc/mutations.hpp"
#include "proc/processor.hpp"
#include "sim/iss.hpp"
#include "ts_sim.hpp"
#include "util/rng.hpp"

namespace sepe::proc {
namespace {

using isa::Instruction;
using isa::Opcode;
using testing::TsSim;
using testing::proc_bubble;
using testing::proc_drive;
using testing::proc_run_program;

/// Initialize pipeline sim + ISS with identical random register values.
void seed_registers(TsSim& sim, const ProcModel& m, sim::Iss& iss, Rng& rng) {
  for (unsigned r = 1; r < 32; ++r) {
    const BitVec v = rng.interesting_bitvec(m.config.xlen);
    sim.set_state(m.regs[r], v);
    iss.state().set_reg(r, v);
  }
}

void expect_registers_match(const TsSim& sim, const ProcModel& m, const sim::Iss& iss,
                            const std::string& context) {
  for (unsigned r = 0; r < 32; ++r)
    ASSERT_EQ(sim.state(m.regs[r]), iss.state().reg(r))
        << context << ": x" << r << " differs";
}

isa::Program random_alu_program(Rng& rng, const ProcConfig& config, unsigned length) {
  isa::Program prog;
  std::vector<Opcode> ops;
  for (Opcode op : config.opcodes)
    if (!isa::is_load(op) && !isa::is_store(op)) ops.push_back(op);
  for (unsigned i = 0; i < length; ++i) {
    const Opcode op = ops[rng.below(ops.size())];
    const unsigned rd = 1 + rng.below(31);
    if (isa::is_rtype(op)) {
      prog.push_back(Instruction::rtype(op, rd, rng.below(32), rng.below(32)));
    } else if (isa::opcode_format(op) == isa::Format::Shift) {
      prog.push_back(Instruction::itype(op, rd, rng.below(32),
                                        static_cast<std::int32_t>(rng.below(32))));
    } else {
      prog.push_back(
          Instruction::itype(op, rd, rng.below(32),
                             static_cast<std::int32_t>(rng.below(4096)) - 2048));
    }
  }
  return prog;
}

class PipelineCrossCheck : public ::testing::TestWithParam<unsigned> {};

TEST_P(PipelineCrossCheck, RandomAluProgramsMatchIss) {
  const unsigned xlen = GetParam();
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const ProcConfig config = ProcConfig::alu_subset(xlen);
  const ProcModel m = build_processor(ts, config);

  Rng rng(xlen * 7 + 1);
  for (int round = 0; round < 6; ++round) {
    TsSim sim(ts);
    sim::Iss iss(xlen, config.mem_words);
    seed_registers(sim, m, iss, rng);
    const isa::Program prog = random_alu_program(rng, config, 25);
    proc_run_program(sim, m, prog);
    iss.run(prog);
    expect_registers_match(sim, m, iss, "round " + std::to_string(round));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, PipelineCrossCheck, ::testing::Values(8u, 16u, 32u));

TEST(Pipeline, ForwardingCoversBackToBackDependencies) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const ProcConfig config = ProcConfig::alu_subset(16);
  const ProcModel m = build_processor(ts, config);
  TsSim sim(ts);
  // x1 = 5; x2 = x1 + x1 (depends on the in-flight result); x3 = x2 - x1.
  proc_run_program(sim, m,
                   {Instruction::itype(Opcode::ADDI, 1, 0, 5),
                    Instruction::rtype(Opcode::ADD, 2, 1, 1),
                    Instruction::rtype(Opcode::SUB, 3, 2, 1)});
  EXPECT_EQ(sim.state(m.regs[1]), BitVec(16, 5));
  EXPECT_EQ(sim.state(m.regs[2]), BitVec(16, 10));
  EXPECT_EQ(sim.state(m.regs[3]), BitVec(16, 5));
}

TEST(Pipeline, MemoryProgramsMatchIss) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  ProcConfig config = ProcConfig::with_memory(16);
  const ProcModel m = build_processor(ts, config);

  Rng rng(99);
  for (int round = 0; round < 6; ++round) {
    TsSim sim(ts);
    sim::Iss iss(16, config.mem_words);
    seed_registers(sim, m, iss, rng);
    // Mixed ALU + memory program; addresses are arbitrary (both sides wrap
    // identically modulo the memory size).
    isa::Program prog;
    for (int i = 0; i < 25; ++i) {
      switch (rng.below(3)) {
        case 0:
          prog.push_back(Instruction::sw(rng.below(32), rng.below(32),
                                         static_cast<std::int32_t>(rng.below(64)) - 32));
          break;
        case 1:
          prog.push_back(Instruction::lw(1 + rng.below(31), rng.below(32),
                                         static_cast<std::int32_t>(rng.below(64)) - 32));
          break;
        default:
          prog.push_back(Instruction::rtype(Opcode::ADD, 1 + rng.below(31), rng.below(32),
                                            rng.below(32)));
      }
    }
    proc_run_program(sim, m, prog);
    iss.run(prog);
    expect_registers_match(sim, m, iss, "round " + std::to_string(round));
    for (unsigned w = 0; w < config.mem_words; ++w)
      ASSERT_EQ(sim.state(m.mem[w]), iss.state().load_word(BitVec(16, w * 4)))
          << "mem word " << w;
  }
}

TEST(Pipeline, X0StaysZeroEvenAsDestination) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const ProcModel m = build_processor(ts, ProcConfig::alu_subset(16));
  TsSim sim(ts);
  proc_run_program(sim, m, {Instruction::itype(Opcode::ADDI, 0, 0, 123)});
  EXPECT_TRUE(sim.state(m.regs[0]).is_zero());
}

TEST(Pipeline, DrainedAfterBubbles) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const ProcModel m = build_processor(ts, ProcConfig::alu_subset(8));
  TsSim sim(ts);
  EXPECT_TRUE(sim.eval(m.drained()).is_true());  // empty at reset
  sim.step(proc_drive(m, Instruction::itype(Opcode::ADDI, 1, 0, 1)));
  EXPECT_FALSE(sim.eval(m.drained()).is_true());  // D stage occupied
  sim.step(proc_bubble(m));
  EXPECT_FALSE(sim.eval(m.drained()).is_true());  // W stage occupied
  sim.step(proc_bubble(m));
  EXPECT_TRUE(sim.eval(m.drained()).is_true());
}

// --- mutation catalogs ---

TEST(Mutations, Table1HasThePapersThirteenRows) {
  const auto bugs = table1_single_instruction_bugs();
  ASSERT_EQ(bugs.size(), 13u);
  const Opcode expected[] = {Opcode::ADD,  Opcode::SUB,  Opcode::XOR,  Opcode::OR,
                             Opcode::AND,  Opcode::SLT,  Opcode::SLTU, Opcode::SRA,
                             Opcode::MULH, Opcode::XORI, Opcode::SLLI, Opcode::SRAI,
                             Opcode::SW};
  for (std::size_t i = 0; i < bugs.size(); ++i) {
    EXPECT_EQ(bugs[i].target, expected[i]) << bugs[i].name;
    EXPECT_TRUE(bugs[i].single_instruction) << bugs[i].name;
    EXPECT_FALSE(bugs[i].name.empty());
    EXPECT_FALSE(bugs[i].description.empty());
  }
}

TEST(Mutations, Figure4HasTwentyMultiInstructionBugs) {
  for (bool with_memory : {false, true}) {
    const auto bugs = figure4_multi_instruction_bugs(with_memory);
    EXPECT_EQ(bugs.size(), 20u);
    for (const Mutation& b : bugs) EXPECT_FALSE(b.single_instruction) << b.name;
  }
}

/// A directed single-instruction test for each Table-1 target: operand
/// values chosen so the documented wrong function differs from the
/// correct one.
isa::Program directed_program_for(Opcode target) {
  switch (target) {
    case Opcode::ADD: return {Instruction::rtype(Opcode::ADD, 3, 1, 2)};
    case Opcode::SUB: return {Instruction::rtype(Opcode::SUB, 3, 1, 2)};
    case Opcode::XOR: return {Instruction::rtype(Opcode::XOR, 3, 1, 2)};
    case Opcode::OR: return {Instruction::rtype(Opcode::OR, 3, 1, 2)};
    case Opcode::AND: return {Instruction::rtype(Opcode::AND, 3, 1, 1)};
    case Opcode::SLT: return {Instruction::rtype(Opcode::SLT, 3, 4, 0)};   // x4 negative
    case Opcode::SLTU: return {Instruction::rtype(Opcode::SLTU, 3, 4, 0)};
    case Opcode::SRA: return {Instruction::rtype(Opcode::SRA, 3, 4, 5)};   // x5 = 4
    case Opcode::MULH: return {Instruction::rtype(Opcode::MULH, 3, 4, 5)};
    case Opcode::XORI: return {Instruction::itype(Opcode::XORI, 3, 1, 3)};
    case Opcode::SLLI: return {Instruction::itype(Opcode::SLLI, 3, 1, 1)};
    case Opcode::SRAI: return {Instruction::itype(Opcode::SRAI, 3, 4, 4)};
    case Opcode::SW: return {Instruction::sw(2, 6, 0)};  // data x2, base x6
    default: return {};
  }
}

void seed_directed(TsSim& sim, const ProcModel& m, sim::Iss& iss) {
  const unsigned xlen = m.config.xlen;
  const auto set = [&](unsigned r, std::uint64_t v) {
    sim.set_state(m.regs[r], BitVec(xlen, v));
    iss.state().set_reg(r, BitVec(xlen, v));
  };
  set(1, 3);
  set(2, 1);
  set(4, 1ULL << (xlen - 1));  // negative / sign-bit operand
  set(5, 4);                   // shift amount
  set(6, 8);                   // store base
}

class Table1Mutations : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Table1Mutations, BugBreaksTheTargetInstructionUniformly) {
  const Mutation bug = table1_single_instruction_bugs()[GetParam()];
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const ProcConfig config = ProcConfig::with_memory(16);
  const ProcModel m = build_processor(ts, config, &bug);

  TsSim sim(ts);
  sim::Iss iss(16, config.mem_words);
  seed_directed(sim, m, iss);
  const isa::Program prog = directed_program_for(bug.target);
  ASSERT_FALSE(prog.empty());
  proc_run_program(sim, m, prog);
  iss.run(prog);

  if (bug.target == Opcode::SW) {
    bool mem_differs = false;
    for (unsigned w = 0; w < config.mem_words; ++w)
      if (!(sim.state(m.mem[w]) == iss.state().load_word(BitVec(16, w * 4))))
        mem_differs = true;
    EXPECT_TRUE(mem_differs) << bug.name << " should corrupt memory";
  } else {
    EXPECT_FALSE(sim.state(m.regs[3]) == iss.state().reg(3))
        << bug.name << " should corrupt x3";
  }
}

TEST_P(Table1Mutations, BugLeavesOtherInstructionsHealthy) {
  // A mutated pipeline must still agree with the ISS on programs that
  // avoid the target instruction (otherwise it is not a single-
  // instruction bug of that instruction).
  const Mutation bug = table1_single_instruction_bugs()[GetParam()];
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  ProcConfig config = ProcConfig::alu_subset(16);
  // Remove the target opcode from the random mix.
  std::vector<Opcode> kept;
  for (Opcode op : config.opcodes)
    if (op != bug.target) kept.push_back(op);
  config.opcodes = kept;
  const ProcModel m = build_processor(ts, config, &bug);

  Rng rng(GetParam() * 17 + 3);
  TsSim sim(ts);
  sim::Iss iss(16, config.mem_words);
  seed_registers(sim, m, iss, rng);
  const isa::Program prog = random_alu_program(rng, config, 30);
  proc_run_program(sim, m, prog);
  iss.run(prog);
  expect_registers_match(sim, m, iss, bug.name);
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table1Mutations, ::testing::Range<std::size_t>(0, 13),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return table1_single_instruction_bugs()[info.param].name;
                         });

TEST(MultiInstructionMutations, ForwardingBugNeedsBackToBackPair) {
  // fwd_a_dead_ADD: an ADD consuming its producer's result back-to-back
  // reads stale data; the same pair separated by a bubble is healthy.
  const auto bugs = figure4_multi_instruction_bugs(false);
  const Mutation* bug = nullptr;
  for (const Mutation& b : bugs)
    if (b.name == "fwd_a_dead_ADD") bug = &b;
  ASSERT_NE(bug, nullptr);

  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const ProcConfig config = ProcConfig::alu_subset(16);
  const ProcModel m = build_processor(ts, config, bug);

  // Back-to-back: x2 = (x1=7) + 1 must see x1's fresh value.
  {
    TsSim sim(ts);
    sim.step(proc_drive(m, Instruction::itype(Opcode::ADDI, 1, 0, 7)));
    sim.step(proc_drive(m, Instruction::rtype(Opcode::ADD, 2, 1, 0)));
    sim.step(proc_bubble(m));
    sim.step(proc_bubble(m));
    sim.step(proc_bubble(m));
    EXPECT_EQ(sim.state(m.regs[2]), BitVec(16, 0)) << "stale read expected under the bug";
  }
  // With a bubble between producer and consumer the regfile is up to date.
  {
    TsSim sim(ts);
    sim.step(proc_drive(m, Instruction::itype(Opcode::ADDI, 1, 0, 7)));
    sim.step(proc_bubble(m));
    sim.step(proc_bubble(m));
    sim.step(proc_drive(m, Instruction::rtype(Opcode::ADD, 2, 1, 0)));
    sim.step(proc_bubble(m));
    sim.step(proc_bubble(m));
    EXPECT_EQ(sim.state(m.regs[2]), BitVec(16, 7));
  }
}

TEST(MultiInstructionMutations, SingleInstructionsWithBubblesStayHealthy) {
  // Definitionally multi-instruction: executing any single instruction in
  // isolation (bubbles around it) matches the ISS for every Figure-4 bug.
  const auto bugs = figure4_multi_instruction_bugs(true);
  Rng rng(5150);
  for (const Mutation& bug : bugs) {
    smt::TermManager mgr;
    ts::TransitionSystem ts(mgr);
    const ProcConfig config = ProcConfig::with_memory(16);
    const ProcModel m = build_processor(ts, config, &bug);

    TsSim sim(ts);
    sim::Iss iss(16, config.mem_words);
    seed_registers(sim, m, iss, rng);
    const isa::Program prog = random_alu_program(rng, config, 8);
    for (const Instruction& inst : prog) {
      sim.step(proc_drive(m, inst));
      sim.step(proc_bubble(m));
      sim.step(proc_bubble(m));
      iss.step(inst);
    }
    expect_registers_match(sim, m, iss, bug.name);
  }
}

}  // namespace
}  // namespace sepe::proc
