// Tests for the witness pipeline (engine/witness.hpp): independent
// simulator replay of FALSIFIED traces, deterministic delta-debug
// shrinking, standalone self-checked artifacts, the campaign/shard
// post-pass (including demotion of rows that do not replay and
// re-derivation of cached rows), and the tamper battery — a corrupted
// artifact or a poisoned verdict cache must fail loudly, never pass
// silently.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "engine/pinned_table.hpp"
#include "engine/report_io.hpp"
#include "engine/shard.hpp"
#include "engine/verdict_cache.hpp"
#include "engine/witness.hpp"
#include "engine/workload.hpp"
#include "proc/mutations.hpp"
#include "util/fault.hpp"

namespace sepe::engine {
namespace {

using smt::TermRef;

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "sepe-witness-XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) ADD_FAILURE() << "mkdtemp failed";
    path = tmpl;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

/// The engine_test counter: increments when the 1-bit input is set,
/// falsified at depth `target` when target <= max_bound. The minimal
/// counterexample needs inc=1 at steps 0..target-1 only, so the final
/// step's input is don't-care and shrinking always trims it:
/// trace_length_shrunk == target - 1 < trace_length == target.
JobSpec counter_job(const std::string& name, unsigned width, std::uint64_t target,
                    const JobBudget& budget) {
  JobSpec job;
  job.name = name;
  job.budget = budget;
  job.build = [width, target](ts::TransitionSystem& ts, std::string*) {
    smt::TermManager& mgr = ts.mgr();
    const TermRef cnt = ts.add_state("cnt", width);
    const TermRef inc = ts.add_input("inc", 1);
    ts.set_init(cnt, mgr.mk_const(width, 0));
    ts.set_next(cnt, mgr.mk_ite(inc, mgr.mk_add(cnt, mgr.mk_const(width, 1)), cnt));
    ts.add_bad(mgr.mk_eq(cnt, mgr.mk_const(width, target)), "cnt-target");
    return true;
  };
  return job;
}

JobBudget counter_budget() {
  JobBudget budget;
  budget.max_bound = 10;
  budget.max_k = 4;
  return budget;
}

/// Build the counter system in-place and find its length-5 witness.
WitnessTrace counter_trace(smt::TermManager& mgr, ts::TransitionSystem& ts) {
  std::string error;
  EXPECT_TRUE(counter_job("cnt5", 8, 5, counter_budget()).build(ts, &error)) << error;
  bmc::Bmc checker(ts);
  bmc::BmcOptions bo;
  bo.max_bound = 10;
  const std::optional<bmc::Witness> w = checker.check(bo);
  EXPECT_TRUE(w.has_value());
  EXPECT_EQ(w->length, 5u);
  return extract_trace(ts, *w);
}

/// Strip the artifact's self-check trailer, returning the sealed payload.
std::string strip_trailer(const std::string& text) {
  const std::size_t at = text.rfind("{\"check\":\"");
  EXPECT_NE(at, std::string::npos);
  return text.substr(0, at);
}

/// Re-seal a (tampered) payload with a fresh, *valid* digest — proves the
/// replay itself, not just the digest, rejects the corruption.
std::string reseal(const std::string& payload) {
  return payload + "{\"check\":\"" + witness_self_check(payload) + "\"}\n";
}

// --- replay + shrink on a hand-built system ---

TEST(WitnessReplayTest, ExtractedCounterTraceReplaysGreen) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const WitnessTrace trace = counter_trace(mgr, ts);
  ASSERT_EQ(trace.inputs.size(), 6u);
  ASSERT_EQ(trace.states.size(), 6u);
  const WitnessReplay replay = replay_trace(ts, trace);
  EXPECT_TRUE(replay.ok) << replay.error;
}

TEST(WitnessReplayTest, TamperedStimulusFailsLoudly) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  const WitnessTrace good = counter_trace(mgr, ts);

  // Zeroing the first increment leaves cnt at 4 when the bad is checked.
  WitnessTrace flipped = good;
  flipped.states.resize(1);  // recorded rows would catch it even earlier
  flipped.inputs[0][0] = BitVec(1, 0);
  const WitnessReplay r1 = replay_trace(ts, flipped);
  EXPECT_FALSE(r1.ok);
  EXPECT_NE(r1.error.find("does not fire at the reported bound"), std::string::npos);

  // With the recorded state rows kept, the divergence is caught at the
  // first state row the corrupt stimulus fails to reproduce.
  WitnessTrace diverge = good;
  diverge.inputs[0][0] = BitVec(1, 0);
  const WitnessReplay r2 = replay_trace(ts, diverge);
  EXPECT_FALSE(r2.ok);
  EXPECT_NE(r2.error.find("diverges from the recorded row"), std::string::npos);

  // A truncated trace contradicts its own claimed length.
  WitnessTrace truncated = good;
  truncated.inputs.pop_back();
  const WitnessReplay r3 = replay_trace(ts, truncated);
  EXPECT_FALSE(r3.ok);
  EXPECT_NE(r3.error.find("input rows"), std::string::npos);

  // A wrong bound never replays: the bad must fire exactly at `length`.
  WitnessTrace early = good;
  early.length = 4;
  early.inputs.resize(5);
  early.states.resize(1);
  const WitnessReplay r4 = replay_trace(ts, early);
  EXPECT_FALSE(r4.ok);

  // Bad index outside the model.
  WitnessTrace wild = good;
  wild.bad_index = 7;
  EXPECT_FALSE(replay_trace(ts, wild).ok);
}

TEST(WitnessShrinkTest, ShrinksDontCareTailDeterministically) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  WitnessTrace trace = counter_trace(mgr, ts);
  const unsigned shrunk = shrink_trace(ts, &trace);
  // The step-5 input is don't-care (the bad fires on the state alone), so
  // the effective stimulus is steps 0..4.
  EXPECT_EQ(shrunk, 4u);
  EXPECT_LT(shrunk, trace.length);
  EXPECT_EQ(trace.states.size(), 1u);  // only row 0 survives shrinking
  const WitnessReplay replay = replay_trace(ts, trace);
  EXPECT_TRUE(replay.ok) << replay.error;  // the shrunk trace still falsifies

  // Byte-determinism: shrinking the same extracted trace again lands on
  // the identical stimulus.
  smt::TermManager mgr2;
  ts::TransitionSystem ts2(mgr2);
  WitnessTrace again = counter_trace(mgr2, ts2);
  EXPECT_EQ(shrink_trace(ts2, &again), shrunk);
  EXPECT_EQ(again.inputs, trace.inputs);
}

// --- the standalone artifact ---

TEST(WitnessArtifactTest, RoundTripsThroughCheck) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  WitnessTrace trace = counter_trace(mgr, ts);
  const unsigned shrunk = shrink_trace(ts, &trace);
  const std::string text =
      render_witness_artifact(ts, "cnt5", JobProvenance{}, trace, shrunk);

  WitnessHeader header;
  std::string why;
  ASSERT_TRUE(check_witness_text(text, &header, &why)) << why;
  EXPECT_EQ(header.name, "cnt5");
  EXPECT_EQ(header.length, 5u);
  EXPECT_EQ(header.shrunk, 4u);
  EXPECT_EQ(header.bad_label, "cnt-target");
  EXPECT_EQ(header.mode, "EDDI-V");  // the default provenance dialect
}

TEST(WitnessArtifactTest, FilenameIsSanitizedAndCollisionGuarded) {
  const std::string a = witness_artifact_filename("add_carry_stuck/EDSEP-V");
  EXPECT_EQ(a.substr(0, 24), "add_carry_stuck_EDSEP-V-");
  EXPECT_EQ(a.substr(a.size() - 8), ".witness");
  // Names that sanitize identically still get distinct files.
  EXPECT_NE(a, witness_artifact_filename("add_carry_stuck_EDSEP-V"));
}

TEST(WitnessTamperTest, EveryCorruptionIsRejectedWithADiagnostic) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  WitnessTrace trace = counter_trace(mgr, ts);
  const unsigned shrunk = shrink_trace(ts, &trace);
  const std::string text =
      render_witness_artifact(ts, "cnt5", JobProvenance{}, trace, shrunk);
  ASSERT_TRUE(check_witness_text(text, nullptr, nullptr));
  const std::string payload = strip_trailer(text);
  std::string why;

  // Stale digest: flip one digit of the recorded self-check.
  std::string stale = text;
  stale[stale.size() - 4] = stale[stale.size() - 4] == '0' ? '1' : '0';
  EXPECT_FALSE(check_witness_text(stale, nullptr, &why));
  EXPECT_NE(why.find("self-check"), std::string::npos);

  // Truncation (dropping the final step line) breaks the digest too.
  std::string cut = payload;
  cut.resize(cut.rfind("{\"step\":5"));
  EXPECT_FALSE(check_witness_text(cut + text.substr(payload.size()), nullptr, &why));
  EXPECT_NE(why.find("self-check"), std::string::npos);

  // Re-sealed corruption — a valid digest over tampered bytes — must be
  // caught by the replay itself, not the checksum.
  std::string flipped = payload;
  const std::size_t in0 = flipped.find("\"in\":[\"0x1\"");
  ASSERT_NE(in0, std::string::npos);
  flipped[in0 + 9] = '0';  // first increment 0x1 -> 0x0
  EXPECT_FALSE(check_witness_text(reseal(flipped), nullptr, &why));
  EXPECT_NE(why.find("replay"), std::string::npos);

  // Re-sealed wrong bound: header length 4 with 6 step lines.
  std::string shortened = payload;
  const std::size_t len_at = shortened.find("\"length\":5");
  ASSERT_NE(len_at, std::string::npos);
  shortened[len_at + 9] = '4';
  EXPECT_FALSE(check_witness_text(reseal(shortened), nullptr, &why));
  EXPECT_NE(why.find("step count"), std::string::npos);

  // Re-sealed shrunk-length lie: metadata must agree with the stimulus.
  std::string lied = payload;
  const std::size_t shr_at = lied.find("\"shrunk\":4");
  ASSERT_NE(shr_at, std::string::npos);
  lied[shr_at + 9] = '2';
  EXPECT_FALSE(check_witness_text(reseal(lied), nullptr, &why));
  EXPECT_NE(why.find("shrunk"), std::string::npos);

  // Truncated step line, re-sealed: the strict line grammar refuses it.
  std::string torn = payload;
  const std::size_t step5 = torn.rfind("{\"step\":5");
  torn.resize(step5);
  torn += "{\"step\":5,\"in\":[\n";
  EXPECT_FALSE(check_witness_text(reseal(torn), nullptr, &why));
  EXPECT_NE(why.find("step"), std::string::npos);

  // Not an artifact at all.
  EXPECT_FALSE(check_witness_text("", nullptr, &why));
  EXPECT_FALSE(check_witness_text("{\"verdict\":\"FALSIFIED\"}\n", nullptr, &why));

  // Unsupported future version, re-sealed.
  std::string versioned = payload;
  const std::size_t v_at = versioned.find("{\"sepe_witness\":1");
  versioned[v_at + 16] = '9';
  EXPECT_FALSE(check_witness_text(reseal(versioned), nullptr, &why));
  EXPECT_NE(why.find("version"), std::string::npos);
}

// --- the campaign post-pass ---

TEST(WitnessPostPassTest, StampsChecksAndWritesArtifact) {
  const JobSpec job = counter_job("cnt5", 8, 5, counter_budget());
  JobResult result = run_job(job);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.trace != nullptr);
  EXPECT_FALSE(result.witness_checked);

  TempDir dir;
  WitnessOptions options;
  options.artifact_dir = dir.path;
  witness_post_pass(job, options, nullptr, &result);
  EXPECT_EQ(result.verdict, Verdict::Falsified);
  EXPECT_TRUE(result.witness_checked);
  EXPECT_EQ(result.trace_length_shrunk, 4u);
  EXPECT_TRUE(result.trace == nullptr);  // released once checked

  const auto text =
      read_text_file(dir.path + "/" + witness_artifact_filename("cnt5"));
  ASSERT_TRUE(text.has_value());
  WitnessHeader header;
  std::string why;
  EXPECT_TRUE(check_witness_text(*text, &header, &why)) << why;
  EXPECT_EQ(header.name, "cnt5");
  EXPECT_EQ(header.shrunk, 4u);
}

TEST(WitnessPostPassTest, OptOutAndNonFalsifiedRowsAreUntouched) {
  const JobSpec job = counter_job("cnt5", 8, 5, counter_budget());
  JobResult result = run_job(job);
  WitnessOptions off;
  off.check = false;
  witness_post_pass(job, off, nullptr, &result);
  EXPECT_FALSE(result.witness_checked);
  EXPECT_EQ(result.verdict, Verdict::Falsified);

  const JobSpec clean = counter_job("clean-40", 8, 40, counter_budget());
  JobResult cr = run_job(clean);
  ASSERT_EQ(cr.verdict, Verdict::BoundClean);
  witness_post_pass(clean, WitnessOptions{}, nullptr, &cr);
  EXPECT_EQ(cr.verdict, Verdict::BoundClean);
  EXPECT_FALSE(cr.witness_checked);
}

TEST(WitnessPostPassTest, RowThatCannotReplayIsDemotedToDiagnosedUnknown) {
  const JobSpec job = counter_job("cnt5", 8, 5, counter_budget());

  // A trace-less row claiming a wrong bound: the graceful re-derivation
  // finds the real length-5 counterexample and refuses the claim.
  JobResult wrong_bound = run_job(job);
  wrong_bound.trace.reset();
  wrong_bound.trace_length = 3;
  witness_post_pass(job, WitnessOptions{}, nullptr, &wrong_bound);
  EXPECT_EQ(wrong_bound.verdict, Verdict::Unknown);
  EXPECT_EQ(wrong_bound.note, "witness: replay mismatch");
  EXPECT_FALSE(wrong_bound.witness_checked);
  EXPECT_TRUE(wrong_bound.witness.empty());

  // A row whose bad label disagrees with the trace it carries.
  JobResult wrong_label = run_job(job);
  wrong_label.bad_label = "some-other-property";
  witness_post_pass(job, WitnessOptions{}, nullptr, &wrong_label);
  EXPECT_EQ(wrong_label.verdict, Verdict::Unknown);
  EXPECT_EQ(wrong_label.note, "witness: replay mismatch");
}

TEST(WitnessPostPassTest, CachedRowWithoutTraceIsRederivedAndChecked) {
  const JobSpec job = counter_job("cnt5", 8, 5, counter_budget());
  JobResult result = run_job(job);
  result.trace.reset();  // what a verdict-cache hit looks like
  result.from_cache = true;
  witness_post_pass(job, WitnessOptions{}, nullptr, &result);
  EXPECT_EQ(result.verdict, Verdict::Falsified);
  EXPECT_TRUE(result.witness_checked);
  EXPECT_TRUE(result.from_cache);
  EXPECT_EQ(result.trace_length_shrunk, 4u);
}

TEST(WitnessPostPassTest, ArtifactWriteFaultDegradesToDiagnosticOnly) {
  const JobSpec job = counter_job("cnt5", 8, 5, counter_budget());
  JobResult result = run_job(job);
  TempDir dir;
  WitnessOptions options;
  options.artifact_dir = dir.path;
  ASSERT_TRUE(fault::configure("point=witness.write:enospc"));
  witness_post_pass(job, options, nullptr, &result);
  fault::configure("");
  // The write failed, the checked verdict did not.
  EXPECT_EQ(result.verdict, Verdict::Falsified);
  EXPECT_TRUE(result.witness_checked);
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/" +
                                       witness_artifact_filename("cnt5")));
  // A torn write must not leave a half-artifact behind either (the write
  // is atomic: temp file + rename).
  ASSERT_TRUE(fault::configure("point=witness.write:torn"));
  witness_post_pass(job, options, nullptr, &result);
  fault::configure("");
  const std::string path = dir.path + "/" + witness_artifact_filename("cnt5");
  if (std::filesystem::exists(path)) {
    const auto text = read_text_file(path);
    ASSERT_TRUE(text.has_value());
    EXPECT_FALSE(check_witness_text(*text, nullptr, nullptr));
  }
}

// --- campaign integration ---

CampaignSpec mixed_spec() {
  const JobBudget budget = counter_budget();
  CampaignSpec spec;
  spec.seed = 42;
  for (unsigned t = 4; t <= 6; ++t)
    spec.jobs.push_back(counter_job("cnt-" + std::to_string(t), 8, t, budget));
  spec.jobs.push_back(counter_job("clean-40", 8, 40, budget));
  return spec;
}

TEST(WitnessCampaignTest, PostPassIsOnByDefaultAndObservationallyInvisible) {
  const CampaignSpec spec = mixed_spec();
  CampaignOptions on;
  on.threads = 2;
  CampaignOptions off = on;
  off.witness.check = false;
  const CampaignReport checked = run_campaign(spec, on);
  const CampaignReport unchecked = run_campaign(spec, off);
  for (const JobResult& r : checked.jobs) {
    if (r.verdict == Verdict::Falsified) {
      EXPECT_TRUE(r.witness_checked) << r.name;
      EXPECT_EQ(r.trace_length_shrunk + 1, r.trace_length) << r.name;
    } else {
      EXPECT_FALSE(r.witness_checked) << r.name;
    }
  }
  for (const JobResult& r : unchecked.jobs) EXPECT_FALSE(r.witness_checked);
  // The stable JSON never learns whether the post-pass ran...
  EXPECT_EQ(checked.to_json(/*include_timing=*/false),
            unchecked.to_json(/*include_timing=*/false));
  // ...while the timing form carries the new columns.
  const std::string timing = checked.to_json(/*include_timing=*/true);
  EXPECT_NE(timing.find("\"witness_checked\": true"), std::string::npos);
  EXPECT_NE(timing.find("\"trace_length_shrunk\": "), std::string::npos);
}

TEST(WitnessCampaignTest, ArtifactsAreByteIdenticalAcrossThreadCounts) {
  const CampaignSpec spec = mixed_spec();
  TempDir seq_dir, par_dir;
  CampaignOptions seq;
  seq.threads = 1;
  seq.witness.artifact_dir = seq_dir.path;
  CampaignOptions par;
  par.threads = 4;
  par.witness.artifact_dir = par_dir.path;
  const CampaignReport a = run_campaign(spec, seq);
  const CampaignReport b = run_campaign(spec, par);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  unsigned artifacts = 0;
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].witness_checked, b.jobs[i].witness_checked);
    EXPECT_EQ(a.jobs[i].trace_length_shrunk, b.jobs[i].trace_length_shrunk);
    if (a.jobs[i].verdict != Verdict::Falsified) continue;
    const std::string file = witness_artifact_filename(a.jobs[i].name);
    const auto sa = read_text_file(seq_dir.path + "/" + file);
    const auto pa = read_text_file(par_dir.path + "/" + file);
    ASSERT_TRUE(sa.has_value() && pa.has_value()) << a.jobs[i].name;
    EXPECT_EQ(*sa, *pa) << a.jobs[i].name;
    ++artifacts;
  }
  EXPECT_EQ(artifacts, 3u);
}

TEST(WitnessCampaignTest, WarmCacheRunRechecksAndMatchesColdArtifacts) {
  const CampaignSpec spec = mixed_spec();
  TempDir cache_dir, cold_dir, warm_dir;
  ShardRunOptions options;
  options.pool.threads = 2;
  options.cache_dir = cache_dir.path;
  std::string error;

  options.pool.witness.artifact_dir = cold_dir.path;
  const CampaignReport cold = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  options.pool.witness.artifact_dir = warm_dir.path;
  const CampaignReport warm = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;

  ASSERT_EQ(cold.jobs.size(), warm.jobs.size());
  for (std::size_t i = 0; i < cold.jobs.size(); ++i) {
    EXPECT_FALSE(cold.jobs[i].from_cache);
    EXPECT_TRUE(warm.jobs[i].from_cache) << warm.jobs[i].name;
    EXPECT_EQ(cold.jobs[i].verdict, warm.jobs[i].verdict);
    // Cached FALSIFIED rows are hearsay until they reproduce: the warm
    // run re-derives and re-checks them, landing on identical fields...
    EXPECT_EQ(cold.jobs[i].witness_checked, warm.jobs[i].witness_checked);
    EXPECT_EQ(cold.jobs[i].trace_length_shrunk, warm.jobs[i].trace_length_shrunk);
    if (cold.jobs[i].verdict != Verdict::Falsified) continue;
    // ...and byte-identical artifacts.
    const std::string file = witness_artifact_filename(cold.jobs[i].name);
    const auto ca = read_text_file(cold_dir.path + "/" + file);
    const auto wa = read_text_file(warm_dir.path + "/" + file);
    ASSERT_TRUE(ca.has_value() && wa.has_value()) << cold.jobs[i].name;
    EXPECT_EQ(*ca, *wa) << cold.jobs[i].name;
  }
  EXPECT_EQ(cold.to_json(false), warm.to_json(false));
}

TEST(WitnessCampaignTest, PoisonedVerdictCacheIsDemotedNotTrusted) {
  // Forge a cache entry claiming the unreachable counter is FALSIFIED at
  // depth 5. The entry is well-formed (valid line digest) — only the
  // replay can expose the lie.
  CampaignSpec spec;
  spec.jobs.push_back(counter_job("clean-40", 8, 40, counter_budget()));
  TempDir cache_dir;
  {
    std::string error;
    const auto cache = VerdictCache::open(cache_dir.path, &error);
    ASSERT_TRUE(cache != nullptr) << error;
    VerdictCache::Entry lie;
    lie.verdict = Verdict::Falsified;
    lie.trace_length = 5;
    lie.bad_label = "cnt-target";
    cache->append(VerdictCache::key_of(spec.jobs[0], ""), lie);
  }

  ShardRunOptions options;
  options.cache_dir = cache_dir.path;
  std::string error;
  const CampaignReport report = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  ASSERT_EQ(report.jobs.size(), 1u);
  EXPECT_TRUE(report.jobs[0].from_cache);
  EXPECT_EQ(report.jobs[0].verdict, Verdict::Unknown);
  EXPECT_EQ(report.jobs[0].note, "witness: replay mismatch");

  // Opting out (--no-witness-check) is exactly the exposure the default
  // closes: the forged verdict sails through.
  options.pool.witness.check = false;
  const CampaignReport trusting = run_sharded(spec, options, &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(trusting.jobs[0].verdict, Verdict::Falsified);
}

// --- the pinned Table-1 grid and the BTOR2 corpus ---

TEST(WitnessGridTest, EveryFalsifiedTable1RowYieldsAValidArtifact) {
  const auto pinned = make_pinned_table(4);
  auto bugs = proc::table1_single_instruction_bugs();
  bugs.resize(8);  // the CI grid rows (sepe-run --bugs table1 --rows 8)
  CampaignMatrix matrix;
  matrix.xlen = 4;
  matrix.modes = {qed::QedMode::EddiV, qed::QedMode::EdsepV};
  matrix.mutations = bugs;
  matrix.equivalences = &pinned->table;
  matrix.budget.max_bound = 6;
  matrix.budget.max_k = 2;
  CampaignSpec spec = expand(matrix, 1);
  // EDDI-V misses single-instruction bugs (uniform corruption): its rows
  // are clean sweeps whatever the bound, so keep them unit-test shallow.
  for (JobSpec& job : spec.jobs)
    if (job.name.find("EDDI-V") != std::string::npos) job.budget.max_bound = 3;

  TempDir dir;
  CampaignOptions options;
  options.threads = 4;
  options.witness.artifact_dir = dir.path;
  const CampaignReport report = run_campaign(spec, options);
  ASSERT_EQ(report.jobs.size(), bugs.size() * 2);
  unsigned falsified = 0;
  for (const JobResult& r : report.jobs) {
    if (r.verdict != Verdict::Falsified) continue;
    ++falsified;
    EXPECT_TRUE(r.witness_checked) << r.name;
    EXPECT_LE(r.trace_length_shrunk, r.trace_length) << r.name;
    const auto text =
        read_text_file(dir.path + "/" + witness_artifact_filename(r.name));
    ASSERT_TRUE(text.has_value()) << r.name;
    WitnessHeader header;
    std::string why;
    ASSERT_TRUE(check_witness_text(*text, &header, &why)) << r.name << ": " << why;
    EXPECT_EQ(header.name, r.name);
    EXPECT_EQ(header.length, r.trace_length) << r.name;
    EXPECT_EQ(header.shrunk, r.trace_length_shrunk) << r.name;
    EXPECT_EQ(header.mode, "EDSEP-V") << r.name;  // EDDI-V never falsifies here
  }
  // EDSEP-V catches every injected bug within the pinned bound.
  EXPECT_EQ(falsified, bugs.size());
}

TEST(WitnessCorpusTest, FalsifiedCorpusJobsRoundTripThroughArtifacts) {
  // Two corpus files (the committed mini-corpus counters): witnesses here
  // exercise the round-tripped-model path — the job's system comes from
  // parse_btor2, and the artifact embeds its to_btor2 re-dump (with the
  // writer's at-init guard flag), which check-witness re-parses.
  TempDir corpus;
  std::ofstream(corpus.path + "/counter.btor2")
      << "1 sort bitvec 4\n2 sort bitvec 1\n10 state 1 cnt\n11 constd 1 0\n"
         "12 init 1 10 11\n13 input 2 step\n14 constd 1 1\n15 add 1 10 14\n"
         "16 ite 1 13 15 10\n17 next 1 10 16\n18 constd 1 5\n19 eq 2 10 18\n"
         "20 bad 19 ; cnt-reaches-five\n";
  std::ofstream(corpus.path + "/multi.btor2")
      << "1 sort bitvec 4\n2 sort bitvec 1\n10 state 1 cnt\n11 constd 1 0\n"
         "12 init 1 10 11\n13 constd 1 1\n14 add 1 10 13\n15 next 1 10 14\n"
         "16 constd 1 3\n17 eq 2 10 16\n18 bad 17 ; cnt-reaches-three\n"
         "20 state 2 frozen\n21 zero 2\n22 init 2 20 21\n23 next 2 20 20\n"
         "24 one 2\n25 eq 2 20 24\n26 bad 25 ; frozen-flips\n";

  JobBudget budget;
  budget.max_bound = 6;
  budget.max_k = 2;
  std::string error;
  const auto spec =
      expand_source(Btor2CorpusSource(corpus.path, budget), 1, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  ASSERT_EQ(spec->jobs.size(), 3u);  // counter + multi:b0 + multi:b1

  TempDir dir;
  CampaignOptions options;
  options.threads = 2;
  options.witness.artifact_dir = dir.path;
  const CampaignReport report = run_campaign(*spec, options);
  unsigned falsified = 0;
  for (const JobResult& r : report.jobs) {
    if (r.verdict != Verdict::Falsified) continue;
    ++falsified;
    EXPECT_TRUE(r.witness_checked) << r.name;
    const auto text =
        read_text_file(dir.path + "/" + witness_artifact_filename(r.name));
    ASSERT_TRUE(text.has_value()) << r.name;
    WitnessHeader header;
    std::string why;
    ASSERT_TRUE(check_witness_text(*text, &header, &why)) << r.name << ": " << why;
    EXPECT_EQ(header.name, r.name);
    EXPECT_EQ(header.family, kBtor2Family);
    EXPECT_EQ(header.length, r.trace_length);
  }
  EXPECT_EQ(falsified, 2u);  // counter at 5, multi:b0 at 3; multi:b1 proved
}

// --- report round-trip of the new columns ---

TEST(WitnessReportTest, TimingJsonRoundTripsCheckedAndShrunk) {
  const CampaignSpec spec = mixed_spec();
  CampaignOptions options;
  options.threads = 2;
  const CampaignReport report = run_campaign(spec, options);
  const std::string json = report.to_json(/*include_timing=*/true);
  std::string error;
  CampaignReport back;
  ASSERT_TRUE(parse_report(json, &back, &error)) << error;
  ASSERT_EQ(back.jobs.size(), report.jobs.size());
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    EXPECT_EQ(back.jobs[i].witness_checked, report.jobs[i].witness_checked);
    EXPECT_EQ(back.jobs[i].trace_length_shrunk, report.jobs[i].trace_length_shrunk);
  }
}

}  // namespace
}  // namespace sepe::engine
