#!/usr/bin/env python3
"""Compare a campaign_perf report against the committed baseline.

Verdict-bearing fields (job set, verdict, trace_length, proved_k,
bad_label) must match exactly — any drift is a hard failure, because it
means the prover stack changed answers, not just speed. The deterministic
work counters (conflicts / propagations / decisions, CNF sizes) are
advisory: regressions beyond the threshold are reported loudly but exit 0,
so a deliberate trade (e.g. more conflicts for less memory) can land with
an updated baseline rather than a red CI. Wall time is ignored entirely.

usage: compare_perf.py BASELINE.json CURRENT.json [--threshold 0.10]
"""
import json
import sys

COUNTERS = ("conflicts", "propagations", "decisions", "cnf_vars", "cnf_clauses")
# Campaign-cache traffic (cone lookups/hits and clauses replayed instead
# of re-blasted). Advisory like the work counters, and tolerated when
# absent from a baseline recorded before the cache existed.
CACHE_COUNTERS = ("cone_lookups", "cone_hits", "cone_clauses_replayed")
# CDCL inprocessing work (variables eliminated, clauses subsumed or
# strengthened, clauses vivified). Advisory and absence-tolerant like the
# cache counters: baselines recorded before inprocessing existed simply
# skip them. More inprocessing is not inherently better or worse, so the
# smaller-is-better regression marker does not apply.
INPROC_COUNTERS = ("eliminated_vars", "subsumed_clauses", "vivified_clauses")
# Robustness observables (docs/ROBUSTNESS.md): transient backend failures
# absorbed by retrying, and jobs that tripped a memory ceiling. Advisory
# and absence-tolerant — baselines recorded before the fault framework
# existed simply skip them. In the fault-free bench both should be zero;
# a nonzero value is flagged loudly (it means the bench host itself is
# failing transiently) but never fails the run.
ROBUST_COUNTERS = ("sat_retries", "jobs_hit_memory_limit")
# Learnt-clause sharing traffic (exports captured, clauses imported,
# vault hits — docs/SOLVER.md). Advisory and absence-tolerant like the
# cache counters; more sharing is not inherently better or worse, so the
# smaller-is-better regression marker does not apply.
SHARING_COUNTERS = ("clauses_exported", "clauses_imported", "vault_hits")
VERDICT_FIELDS = ("verdict", "trace_length", "proved_k", "bad_label")


def main() -> int:
    args = []
    threshold = 0.10
    argv = sys.argv[1:]
    i = 0
    while i < len(argv):
        a = argv[i]
        if a.startswith("--threshold"):
            if "=" in a:
                threshold = float(a.split("=", 1)[1])
            else:
                i += 1
                if i >= len(argv):
                    print("--threshold needs a value", file=sys.stderr)
                    return 2
                threshold = float(argv[i])
        elif a.startswith("--"):
            print(f"unknown flag {a}", file=sys.stderr)
            return 2
        else:
            args.append(a)
        i += 1
    if len(args) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(args[0]) as f:
        base = json.load(f)
    with open(args[1]) as f:
        cur = json.load(f)

    drift = []
    base_jobs = {j["name"]: j for j in base["jobs"]}
    cur_jobs = {j["name"]: j for j in cur["jobs"]}
    if list(base_jobs) != list(cur_jobs):
        drift.append(f"job set changed: {sorted(set(base_jobs) ^ set(cur_jobs))}")
    for name in base_jobs.keys() & cur_jobs.keys():
        for field in VERDICT_FIELDS:
            b, c = base_jobs[name].get(field), cur_jobs[name].get(field)
            if b != c:
                drift.append(f"{name}: {field} {b!r} -> {c!r}")
    if drift:
        print("VERDICT DRIFT — the prover stack changed answers:")
        for line in drift:
            print(f"  {line}")
        return 1

    warm = cur.get("warm_totals")
    if warm is not None:
        print(
            f"warm rerun: {warm['jobs_from_cache']}/{warm['jobs_total']} jobs "
            f"from cache, {warm['conflicts']} conflicts, "
            f"{warm['cnf_clauses']} blasted clauses"
        )
        if warm["jobs_from_cache"] < warm["jobs_total"]:
            print(
                "  warning: the warm rerun did not serve every job from the "
                "verdict cache (advisory)"
            )

    regressed = False
    for counter in (COUNTERS + CACHE_COUNTERS + INPROC_COUNTERS + ROBUST_COUNTERS +
                    SHARING_COUNTERS):
        b, c = base["totals"].get(counter), cur["totals"].get(counter)
        if b is None or c is None:
            which = "baseline" if b is None else "current"
            print(f"{counter:>22}: not recorded in the {which} report — skipped")
            continue
        # A zero baseline must not mask growth: any nonzero current value
        # counts as an (infinitely large) relative regression.
        delta = (c - b) / b if b else (float("inf") if c else 0.0)
        marker = ""
        if counter in CACHE_COUNTERS:
            # Cache traffic is informational: a higher hit / replay count
            # is an improvement, so the regression marker logic (which
            # assumes smaller-is-better) does not apply.
            if abs(delta) > threshold:
                marker = "  (cache-traffic shift — informational)"
        elif counter in INPROC_COUNTERS:
            if abs(delta) > threshold:
                marker = "  (inprocessing shift — informational)"
        elif counter in SHARING_COUNTERS:
            if abs(delta) > threshold:
                marker = "  (sharing-traffic shift — informational)"
        elif delta > threshold:
            marker = f"  <-- REGRESSION beyond {threshold:.0%} (advisory)"
            regressed = True
        elif delta < -threshold:
            marker = "  (improvement — consider refreshing bench/baseline.json)"
        print(f"{counter:>14}: {b:>12} -> {c:>12}  ({delta:+.1%}){marker}")
    if regressed:
        print(
            "\nadvisory: deterministic counters regressed; if intentional, "
            "refresh bench/baseline.json in the same PR"
        )
    else:
        print("\nverdicts identical, counters within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
