// qed_bench_util.hpp — shared infrastructure for the Table-1 / Figure-4
// benches. The pinned equivalence table now lives in the campaign engine
// (src/engine/pinned_table.hpp) so that tools/sepe-run shares it; this
// header re-exports it for the benches and keeps the one-shot timed BMC
// helper used by experiments that have not moved onto the engine.
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "bmc/bmc.hpp"
#include "engine/campaign.hpp"
#include "engine/pinned_table.hpp"
#include "engine/workload.hpp"
#include "proc/mutations.hpp"
#include "qed/qed_module.hpp"
#include "synth/cegis.hpp"
#include "util/stopwatch.hpp"

namespace sepe::bench {

using engine::PinnedTable;

inline std::unique_ptr<PinnedTable> make_bench_table(unsigned duv_xlen) {
  return engine::make_pinned_table(duv_xlen);
}

/// Opcodes an EDSEP replay of `op` issues; used to size the DUV opcode
/// set per experiment.
inline std::vector<isa::Opcode> replay_opcodes(const PinnedTable& t, isa::Opcode op) {
  std::vector<isa::Opcode> ops = engine::replay_opcodes(t.table, op);
  assert(!ops.empty() && "no pinned equivalence for opcode");
  return ops;
}

/// One timed BMC run of a QED verification model.
struct QedRunResult {
  bool found = false;
  unsigned trace_length = 0;
  double seconds = 0.0;
  bool hit_limit = false;
};

inline QedRunResult run_qed_bmc(qed::QedMode mode, const proc::ProcConfig& config,
                                const synth::EquivalenceTable* table,
                                const proc::Mutation* mutation, unsigned max_bound,
                                double max_seconds = 0.0) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  qed::QedOptions qo;
  qo.mode = mode;
  qo.queue_capacity = 2;
  qo.counter_bits = 3;
  qo.equivalences = table;
  qed::build_qed_model(ts, config, qo, mutation);

  bmc::Bmc checker(ts);
  bmc::BmcOptions bo;
  bo.max_bound = max_bound;
  bo.max_seconds = max_seconds;
  Stopwatch sw;
  const auto w = checker.check(bo);
  QedRunResult r;
  r.seconds = sw.seconds();
  r.found = w.has_value();
  r.trace_length = w ? w->length : 0;
  r.hit_limit = checker.stats().hit_resource_limit;
  return r;
}

}  // namespace sepe::bench
