// qed_bench_util.hpp — shared infrastructure for the Table-1 / Figure-4
// benches: a pinned equivalence table and timed BMC runs of the two QED
// verification models.
//
// The equivalence programs here are the ones HPF-CEGIS finds (see
// bench/fig3_synthesis); the benches pin the multisets so that the
// verification-side experiments are deterministic and do not re-pay the
// synthesis cost on every run. Each program transforms the operand
// data path (different wiring or different opcodes), which is what lets
// EDSEP-V separate a single-instruction bug's effect on the original
// instruction from its effect on the replay (paper §5).
#pragma once

#include <cassert>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bmc/bmc.hpp"
#include "proc/mutations.hpp"
#include "qed/qed_module.hpp"
#include "synth/cegis.hpp"
#include "util/stopwatch.hpp"

namespace sepe::bench {

/// Owns the specs the table's programs point into.
struct PinnedTable {
  std::vector<synth::Component> lib = synth::make_standard_library();
  std::vector<synth::SynthSpec> specs;
  synth::EquivalenceTable table;

  PinnedTable() { specs.reserve(64); }

  const synth::Component* comp(const std::string& name) const {
    for (const auto& c : lib)
      if (c.name == name) return &c;
    assert(false && "unknown component");
    return nullptr;
  }

  /// Synthesize one pinned equivalence via CEGIS on a fixed multiset.
  ///
  /// `synth_xlen` must equal the DUV width the table will verify:
  /// solved attribute constants (sign masks, multiplier tricks) are in
  /// general only correct at the width they were synthesized for, so the
  /// program is re-proved at that width here.
  void add(const std::string& key, synth::SynthSpec spec,
           const std::vector<std::string>& multiset, unsigned synth_xlen) {
    specs.push_back(std::move(spec));
    std::vector<const synth::Component*> comps;
    for (const std::string& name : multiset) comps.push_back(comp(name));
    synth::CegisOptions o;
    o.xlen = synth_xlen;
    // Prefer a program whose output instruction differs from the
    // original opcode (full datapath separation); fall back to the plain
    // §4.1 constraint when the multiset cannot satisfy that.
    o.forbid_output_op = true;
    auto p = synth::cegis_multiset(specs.back(), comps, o);
    if (!p) {
      o.forbid_output_op = false;
      p = synth::cegis_multiset(specs.back(), comps, o);
    }
    assert(p.has_value() && "pinned multiset failed to synthesize");
    assert(synth::verify_program(*p, synth_xlen) && "pinned program failed re-proof");
    table.add(key, std::move(*p));
  }
};

/// The equivalence table covering every instruction the Table-1 and
/// Figure-4 benches stream. Every program reshapes the operands, so a
/// uniform corruption of the original instruction diverges from the
/// replay (even for the rows whose equivalent reuses the opcode, e.g.
/// SRA == NOT(SRA(NOT(a), b))).
inline std::unique_ptr<PinnedTable> make_bench_table(unsigned duv_xlen) {
  auto t = std::make_unique<PinnedTable>();
  using isa::Opcode;
  auto spec = [](Opcode op) { return synth::make_spec(op); };
  const unsigned w = duv_xlen;
  t->add("ADD", spec(Opcode::ADD), {"NOT", "SUB", "NOT"}, w);
  t->add("SUB", spec(Opcode::SUB), {"NOT", "ADD", "NOT"}, w);     // Listing 1
  t->add("XOR", spec(Opcode::XOR), {"OR", "AND", "SUB"}, w);
  t->add("OR", spec(Opcode::OR), {"ADD", "AND", "SUB"}, w);       // a+b-(a&b)
  t->add("AND", spec(Opcode::AND), {"ADD", "OR", "SUB"}, w);      // a+b-(a|b)
  t->add("SLT", spec(Opcode::SLT), {"XORI", "XORI", "SLTU"}, w);  // sign-flip
  t->add("SLTU", spec(Opcode::SLTU), {"XORI", "XORI", "SLT"}, w);
  t->add("SRA", spec(Opcode::SRA), {"NOT", "SRA", "NOT"}, w);     // complement conjugation
  t->add("MULH", spec(Opcode::MULH), {"MULHSU_C", "SIGNSEL", "SUB"}, w);
  t->add("XORI", spec(Opcode::XORI), {"NOT", "XORI", "NOT"}, w);
  t->add("SLLI", spec(Opcode::SLLI), {"XOR", "ADDI", "SLL"}, w);  // materialized shamt
  t->add("SRAI", spec(Opcode::SRAI), {"NOT", "SRAI", "NOT"}, w);
  t->add("ADDI", spec(Opcode::ADDI), {"NOT", "NOT", "ADDI"}, w);  // conjugated passthrough
  t->add("LW_ADDR", synth::make_address_spec(Opcode::LW), {"NOT", "NOT", "ADDI"}, w);
  t->add("SW_ADDR", synth::make_address_spec(Opcode::SW), {"NOT", "NOT", "ADDI"}, w);
  return t;
}

/// Opcodes an EDSEP replay of `op` issues (the lowering of its pinned
/// equivalent program plus, for memory ops, the shadow access itself);
/// used to size the DUV opcode set per experiment.
inline std::vector<isa::Opcode> replay_opcodes(const PinnedTable& t, isa::Opcode op) {
  const bool memory = isa::is_load(op) || isa::is_store(op);
  const std::string key =
      memory ? std::string(isa::opcode_name(op)) + "_ADDR" : isa::opcode_name(op);
  const synth::SynthProgram* prog = t.table.first(key);
  assert(prog && "no pinned equivalence for opcode");
  std::vector<isa::Opcode> ops;
  const auto push_unique = [&](isa::Opcode o) {
    for (isa::Opcode existing : ops)
      if (existing == o) return;
    ops.push_back(o);
  };
  for (const synth::SynthLine& line : prog->lines)
    for (const synth::ExpansionInstr& e : line.comp->expansion) push_unique(e.op);
  if (memory) push_unique(op);
  return ops;
}

/// One timed BMC run of a QED verification model.
struct QedRunResult {
  bool found = false;
  unsigned trace_length = 0;
  double seconds = 0.0;
  bool hit_limit = false;
};

inline QedRunResult run_qed_bmc(qed::QedMode mode, const proc::ProcConfig& config,
                                const synth::EquivalenceTable* table,
                                const proc::Mutation* mutation, unsigned max_bound,
                                double max_seconds = 0.0) {
  smt::TermManager mgr;
  ts::TransitionSystem ts(mgr);
  qed::QedOptions qo;
  qo.mode = mode;
  qo.queue_capacity = 2;
  qo.counter_bits = 3;
  qo.equivalences = table;
  qed::build_qed_model(ts, config, qo, mutation);

  bmc::Bmc checker(ts);
  bmc::BmcOptions bo;
  bo.max_bound = max_bound;
  bo.max_seconds = max_seconds;
  Stopwatch sw;
  const auto w = checker.check(bo);
  QedRunResult r;
  r.seconds = sw.seconds();
  r.found = w.has_value();
  r.trace_length = w ? w->length : 0;
  r.hit_limit = checker.stats().hit_resource_limit;
  return r;
}

}  // namespace sepe::bench
