// fig3_classical — the classical-CEGIS column of the Figure 3 experiment.
//
// §6.1: "Classical CEGIS [11] failed to synthesize a single original
// instruction even after several weeks of experimentation with the
// library of 29 components." The classical encoding instantiates every
// library component in one monolithic program; with 29 components the
// well-formedness constraint demands a 29-line straight-line program
// wiring every component in — for a 1-3 instruction specification the
// encoding is either unsatisfiable or astronomically large to decide.
//
// This bench runs classical CEGIS on the first few cases with a per-case
// wall/conflict budget and reports the (expected) universal failure,
// plus a sanity row on a 2-component library where the classical
// encoding *does* succeed — showing the failure is structural, not an
// implementation artifact.
//
// Flags: --cap SEC (per-case budget, default 15), --cases N (default 5).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "synth/cegis.hpp"
#include "util/stopwatch.hpp"

using namespace sepe;
using namespace sepe::synth;

int main(int argc, char** argv) {
  double cap = 15.0;
  unsigned cases_limit = 5;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--cap") && i + 1 < argc) cap = std::atof(argv[++i]);
    if (!std::strcmp(argv[i], "--cases") && i + 1 < argc)
      cases_limit = std::atoi(argv[++i]);
  }

  const auto lib = make_standard_library();
  const auto cases = make_figure3_cases();

  DriverOptions opts;
  opts.cegis.xlen = 8;
  opts.cegis.synth_conflict_budget = 2000000;
  opts.cegis.synth_seconds_budget = cap;  // bound each monolithic query
  opts.target_programs = 1;
  opts.max_seconds = cap;

  std::printf("Figure 3 (classical column) — classical CEGIS on the 29-component "
              "library, %.0fs budget per case\n\n", cap);
  std::printf("%-8s | %-10s | %s\n", "case", "time(s)", "outcome");
  std::printf("---------+------------+---------------------------\n");

  unsigned failures = 0;
  for (unsigned i = 0; i < cases.size() && i < cases_limit; ++i) {
    Stopwatch sw;
    const SynthesisResult r = classical_cegis(cases[i], lib, opts, /*instances=*/1);
    const bool failed = r.programs.empty();
    failures += failed;
    std::printf("%-8s | %-10.2f | %s\n", cases[i].name.c_str(), sw.seconds(),
                failed ? "no program (as the paper reports)" : "synthesized (!)");
    std::fflush(stdout);
  }
  std::printf("\n%u/%u cases failed under classical CEGIS.\n", failures,
              std::min<unsigned>(cases_limit, cases.size()));

  // Control: classical CEGIS is implemented correctly — it succeeds the
  // moment the whole library happens to be exactly one program.
  std::vector<Component> tiny;
  for (const Component& c : lib)
    if (c.name == "NOT" || c.name == "ADDI") tiny.push_back(c);
  SynthSpec neg;
  neg.name = "NEG_CONTROL";
  neg.opcode = isa::Opcode::SUB;
  neg.inputs = {InputClass::Reg};
  neg.semantics = [](smt::TermManager& mgr, const std::vector<smt::TermRef>& in,
                     unsigned) {
    return mgr.mk_neg(in[0]);
  };
  Stopwatch sw;
  const SynthesisResult control = classical_cegis(neg, tiny, opts, 1);
  std::printf("control (2-component library, NEG spec): %s in %.2fs\n",
              control.programs.empty() ? "FAILED" : "synthesized", sw.seconds());
  return 0;
}
