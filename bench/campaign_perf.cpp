// campaign_perf — deterministic perf report for the prover stack.
//
// Runs the Table-1 single-instruction campaign (8 instruction classes ×
// both QED modes, the CI smoke grid) with sequential provers: BMC first,
// then k-induction, no cancellation, default solver config. Every counter
// in the report — SAT conflicts / propagations / decisions and CNF
// variable / clause counts — is then a deterministic function of the
// code, so consecutive runs (and CI runs on different machines) produce
// identical numbers and the counters form a comparable perf trajectory
// across commits. Wall time is reported too but is machine-dependent and
// excluded from comparisons (this container pins 1 CPU; see README).
//
// Usage: campaign_perf [--json FILE] [--rows N] [--bound N] [--max-k N]
// The default grid must stay in sync with bench/baseline.json and the CI
// perf-report job.
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>

#include "engine/report_io.hpp"
#include "qed_bench_util.hpp"
#include "util/json.hpp"
#include "util/parse.hpp"

using namespace sepe;

namespace {

std::string perf_json(const engine::CampaignReport& report, unsigned rows,
                      unsigned bound, unsigned max_k) {
  std::ostringstream os;
  os << "{\n  \"campaign\": {\"bugs\": \"table1\", \"rows\": " << rows
     << ", \"modes\": \"both\", \"bound\": " << bound << ", \"max_k\": " << max_k
     << ", \"xlen\": 4}";
  std::uint64_t conflicts = 0, propagations = 0, decisions = 0;
  std::uint64_t cnf_vars = 0, cnf_clauses = 0;
  os << ",\n  \"jobs\": [";
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    const engine::JobResult& j = report.jobs[i];
    conflicts += j.conflicts;
    propagations += j.propagations;
    decisions += j.decisions;
    cnf_vars += j.cnf_vars;
    cnf_clauses += j.cnf_clauses;
    os << (i ? ",\n    {" : "\n    {") << "\"name\": ";
    json_escape(os, j.name);
    os << ", \"verdict\": \"" << engine::verdict_name(j.verdict) << "\"";
    if (j.verdict == engine::Verdict::Falsified) {
      os << ", \"trace_length\": " << j.trace_length;
      if (!j.bad_label.empty()) {
        os << ", \"bad_label\": ";
        json_escape(os, j.bad_label);
      }
    }
    if (j.verdict == engine::Verdict::Proved) os << ", \"proved_k\": " << j.proved_k;
    os << ", \"conflicts\": " << j.conflicts
       << ", \"propagations\": " << j.propagations
       << ", \"decisions\": " << j.decisions << ", \"cnf_vars\": " << j.cnf_vars
       << ", \"cnf_clauses\": " << j.cnf_clauses << "}";
  }
  os << "\n  ]";
  os << ",\n  \"totals\": {\"conflicts\": " << conflicts
     << ", \"propagations\": " << propagations << ", \"decisions\": " << decisions
     << ", \"cnf_vars\": " << cnf_vars << ", \"cnf_clauses\": " << cnf_clauses
     << "}";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", report.wall_seconds);
  os << ",\n  \"wall_seconds\": " << buf << "\n}\n";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "-";
  unsigned rows = 8, bound = 6, max_k = 2;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "campaign_perf: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    const auto parse_count = [&](const char* flag, const char* text) {
      const auto value = parse_u64_strict(text);
      if (!value || *value == 0 || *value > 1000) {
        std::fprintf(stderr, "campaign_perf: %s expects a count, got '%s'\n", flag,
                     text);
        std::exit(2);
      }
      return static_cast<unsigned>(*value);
    };
    if (!std::strcmp(argv[i], "--json")) json_path = next("--json");
    else if (!std::strcmp(argv[i], "--rows"))
      rows = parse_count("--rows", next("--rows"));
    else if (!std::strcmp(argv[i], "--bound"))
      bound = parse_count("--bound", next("--bound"));
    else if (!std::strcmp(argv[i], "--max-k"))
      max_k = parse_count("--max-k", next("--max-k"));
    else {
      std::fprintf(stderr,
                   "usage: campaign_perf [--json FILE] [--rows N] [--bound N] "
                   "[--max-k N]\n");
      return 2;
    }
  }

  std::fprintf(stderr, "synthesizing the pinned equivalence table (xlen=4)...\n");
  const auto pinned = bench::make_bench_table(4);

  engine::CampaignMatrix matrix;
  matrix.xlen = 4;
  matrix.modes = {qed::QedMode::EddiV, qed::QedMode::EdsepV};
  auto bugs = proc::table1_single_instruction_bugs();
  if (rows < bugs.size()) bugs.resize(rows);
  matrix.mutations = std::move(bugs);
  matrix.equivalences = &pinned->table;
  matrix.extra_opcodes = {isa::Opcode::ADD, isa::Opcode::ADDI};
  matrix.budget.max_bound = bound;
  matrix.budget.max_k = max_k;
  matrix.budget.sequential_provers = true;

  engine::CampaignOptions options;
  options.threads = 1;
  const engine::CampaignReport report =
      engine::run_campaign(engine::expand(matrix, 1), options);

  std::fprintf(stderr, "%s", report.to_table().c_str());
  const std::string json = perf_json(report, rows, bound, max_k);
  if (json_path == "-") {
    std::printf("%s", json.c_str());
  } else {
    if (!engine::write_text_file_atomic(json_path, json)) {
      std::fprintf(stderr, "campaign_perf: cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "perf report written to %s\n", json_path.c_str());
  }
  return report.count(engine::Verdict::Unknown) == 0 ? 0 : 3;
}
