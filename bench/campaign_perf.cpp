// campaign_perf — deterministic perf report for the prover stack.
//
// Runs the Table-1 single-instruction campaign (8 instruction classes ×
// both QED modes, the CI smoke grid) with sequential provers: BMC first,
// then k-induction, no cancellation, default solver config plus
// learnt-clause sharing (the cone-digest clause vault; sequential mode
// is vault-only and bit-reproducible — docs/SOLVER.md). Every counter
// in the report — SAT conflicts / propagations / decisions, CNF
// variable / clause counts, and the sharing traffic — is then a
// deterministic function of the code, so consecutive runs (and CI runs
// on different machines) produce identical numbers and the counters
// form a comparable perf trajectory across commits. Wall time is reported too but is machine-dependent and
// excluded from comparisons (this container pins 1 CPU; see README).
//
// The campaign runs THREE times:
//
//   cold — fresh cone cache + empty verdict-cache directory, sharing
//          on. The cone counters (lookups / hits / clauses replayed,
//          the "blast avoided" metric) measure intra-campaign cone
//          sharing; all still deterministic at 1 thread with
//          sequential provers.
//   warm — same cone cache, same verdict-cache directory. Every job is
//          served from the verdict journal, so the warm totals (solver
//          conflicts, blasted clauses, jobs solved) drop to zero — the
//          headline saving the cache exists for. The bench hard-fails if
//          any warm verdict field differs from its cold twin: the cache
//          must never change answers, only skip work.
//   ref  — sharing OFF, fresh caches. Its conflict total is the
//          no-sharing reference recorded as "no_sharing_totals" in the
//          JSON; the CI perf-report job asserts the sharing-on total
//          stays strictly below the committed reference, so the vault's
//          saving can only regress loudly. The bench hard-fails if the
//          reference run's verdicts differ from the cold run's: sharing
//          must never change answers, only shrink the search.
//
// Usage: campaign_perf [--json FILE] [--rows N] [--bound N] [--max-k N]
// The default grid must stay in sync with bench/baseline.json and the CI
// perf-report job.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <sstream>
#include <string>

#include <unistd.h>

#include "engine/report_io.hpp"
#include "engine/shard.hpp"
#include "qed_bench_util.hpp"
#include "util/json.hpp"
#include "util/parse.hpp"

using namespace sepe;

namespace {

struct Totals {
  std::uint64_t conflicts = 0, propagations = 0, decisions = 0;
  std::uint64_t cnf_vars = 0, cnf_clauses = 0;
  std::uint64_t cone_lookups = 0, cone_hits = 0, cone_clauses_replayed = 0;
  std::uint64_t eliminated_vars = 0, subsumed_clauses = 0, vivified_clauses = 0;
  std::uint64_t sat_retries = 0, jobs_hit_memory_limit = 0;
  std::uint64_t clauses_exported = 0, clauses_imported = 0, vault_hits = 0;
  std::uint64_t jobs_from_cache = 0;
};

Totals tally(const engine::CampaignReport& report) {
  Totals t;
  for (const engine::JobResult& j : report.jobs) {
    t.conflicts += j.conflicts;
    t.propagations += j.propagations;
    t.decisions += j.decisions;
    t.cnf_vars += j.cnf_vars;
    t.cnf_clauses += j.cnf_clauses;
    t.cone_lookups += j.cone_lookups;
    t.cone_hits += j.cone_hits;
    t.cone_clauses_replayed += j.cone_clauses_replayed;
    t.eliminated_vars += j.eliminated_vars;
    t.subsumed_clauses += j.subsumed_clauses;
    t.vivified_clauses += j.vivified_clauses;
    t.sat_retries += j.sat_retries;
    t.clauses_exported += j.clauses_exported;
    t.clauses_imported += j.clauses_imported;
    t.vault_hits += j.vault_hits;
    if (j.hit_memory_limit) ++t.jobs_hit_memory_limit;
    if (j.from_cache) ++t.jobs_from_cache;
  }
  return t;
}

std::string perf_json(const engine::CampaignReport& cold,
                      const engine::CampaignReport& warm,
                      const engine::CampaignReport& noshare, unsigned rows,
                      unsigned bound, unsigned max_k) {
  std::ostringstream os;
  os << "{\n  \"campaign\": {\"bugs\": \"table1\", \"rows\": " << rows
     << ", \"modes\": \"both\", \"bound\": " << bound << ", \"max_k\": " << max_k
     << ", \"xlen\": 4}";
  os << ",\n  \"jobs\": [";
  for (std::size_t i = 0; i < cold.jobs.size(); ++i) {
    const engine::JobResult& j = cold.jobs[i];
    os << (i ? ",\n    {" : "\n    {") << "\"name\": ";
    json_escape(os, j.name);
    os << ", \"verdict\": \"" << engine::verdict_name(j.verdict) << "\"";
    if (j.verdict == engine::Verdict::Falsified) {
      os << ", \"trace_length\": " << j.trace_length;
      if (!j.bad_label.empty()) {
        os << ", \"bad_label\": ";
        json_escape(os, j.bad_label);
      }
    }
    if (j.verdict == engine::Verdict::Proved) os << ", \"proved_k\": " << j.proved_k;
    os << ", \"conflicts\": " << j.conflicts
       << ", \"propagations\": " << j.propagations
       << ", \"decisions\": " << j.decisions << ", \"cnf_vars\": " << j.cnf_vars
       << ", \"cnf_clauses\": " << j.cnf_clauses
       << ", \"cone_lookups\": " << j.cone_lookups
       << ", \"cone_hits\": " << j.cone_hits
       << ", \"cone_clauses_replayed\": " << j.cone_clauses_replayed
       << ", \"eliminated_vars\": " << j.eliminated_vars
       << ", \"subsumed_clauses\": " << j.subsumed_clauses
       << ", \"vivified_clauses\": " << j.vivified_clauses
       << ", \"clauses_exported\": " << j.clauses_exported
       << ", \"clauses_imported\": " << j.clauses_imported
       << ", \"vault_hits\": " << j.vault_hits << "}";
  }
  os << "\n  ]";
  const Totals c = tally(cold);
  const Totals w = tally(warm);
  os << ",\n  \"totals\": {\"conflicts\": " << c.conflicts
     << ", \"propagations\": " << c.propagations << ", \"decisions\": " << c.decisions
     << ", \"cnf_vars\": " << c.cnf_vars << ", \"cnf_clauses\": " << c.cnf_clauses
     << ", \"cone_lookups\": " << c.cone_lookups << ", \"cone_hits\": " << c.cone_hits
     << ", \"cone_clauses_replayed\": " << c.cone_clauses_replayed
     << ", \"eliminated_vars\": " << c.eliminated_vars
     << ", \"subsumed_clauses\": " << c.subsumed_clauses
     << ", \"vivified_clauses\": " << c.vivified_clauses
     // Robustness observables (docs/ROBUSTNESS.md): both must be zero in
     // this fault-free bench, and compare_perf.py treats them as
     // advisory, absence-tolerant fields so older baselines still load.
     << ", \"sat_retries\": " << c.sat_retries
     << ", \"jobs_hit_memory_limit\": " << c.jobs_hit_memory_limit
     // Learnt-clause sharing traffic (docs/SOLVER.md): vault-only in
     // this sequential bench, deterministic, and advisory /
     // absence-tolerant in compare_perf.py like the cache counters.
     << ", \"clauses_exported\": " << c.clauses_exported
     << ", \"clauses_imported\": " << c.clauses_imported
     << ", \"vault_hits\": " << c.vault_hits << "}";
  // The warm rerun against the same cache directory: everything served
  // from the verdict journal, zero fresh solver work. These totals are
  // deterministic too (they must all be zero with every job cached).
  os << ",\n  \"warm_totals\": {\"jobs_from_cache\": " << w.jobs_from_cache
     << ", \"jobs_total\": " << warm.jobs.size() << ", \"conflicts\": " << w.conflicts
     << ", \"cnf_clauses\": " << w.cnf_clauses << "}";
  // The sharing-off reference run: same grid, share_clauses = 0, fresh
  // caches. The CI perf-report job gates the sharing-on conflict total
  // strictly below the committed copy of this figure.
  const Totals n = tally(noshare);
  os << ",\n  \"no_sharing_totals\": {\"conflicts\": " << n.conflicts
     << ", \"propagations\": " << n.propagations
     << ", \"decisions\": " << n.decisions << "}";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", cold.wall_seconds);
  os << ",\n  \"wall_seconds\": " << buf << "\n}\n";
  return os.str();
}

/// The contract the warm and sharing-off runs must prove: identical
/// verdict-bearing fields, job by job. `what` names the rerun in the
/// diagnostic. Returns false (and prints the offender) on drift.
bool verdicts_match(const engine::CampaignReport& cold,
                    const engine::CampaignReport& other, const char* what) {
  if (cold.jobs.size() != other.jobs.size()) {
    std::fprintf(stderr, "campaign_perf: %s run has %zu jobs, cold %zu\n", what,
                 other.jobs.size(), cold.jobs.size());
    return false;
  }
  for (std::size_t i = 0; i < cold.jobs.size(); ++i) {
    const engine::JobResult& a = cold.jobs[i];
    const engine::JobResult& b = other.jobs[i];
    if (a.name != b.name || a.verdict != b.verdict ||
        a.trace_length != b.trace_length || a.proved_k != b.proved_k ||
        a.bad_label != b.bad_label || a.note != b.note) {
      std::fprintf(stderr,
                   "campaign_perf: VERDICT DRIFT on '%s': %s run disagrees "
                   "with cold (%s vs %s) — an answer changed\n",
                   a.name.c_str(), what, engine::verdict_name(b.verdict),
                   engine::verdict_name(a.verdict));
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "-";
  unsigned rows = 8, bound = 6, max_k = 2;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "campaign_perf: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    const auto parse_count = [&](const char* flag, const char* text) {
      const auto value = parse_u64_strict(text);
      if (!value || *value == 0 || *value > 1000) {
        std::fprintf(stderr, "campaign_perf: %s expects a count, got '%s'\n", flag,
                     text);
        std::exit(2);
      }
      return static_cast<unsigned>(*value);
    };
    if (!std::strcmp(argv[i], "--json")) json_path = next("--json");
    else if (!std::strcmp(argv[i], "--rows"))
      rows = parse_count("--rows", next("--rows"));
    else if (!std::strcmp(argv[i], "--bound"))
      bound = parse_count("--bound", next("--bound"));
    else if (!std::strcmp(argv[i], "--max-k"))
      max_k = parse_count("--max-k", next("--max-k"));
    else {
      std::fprintf(stderr,
                   "usage: campaign_perf [--json FILE] [--rows N] [--bound N] "
                   "[--max-k N]\n");
      return 2;
    }
  }

  std::fprintf(stderr, "synthesizing the pinned equivalence table (xlen=4)...\n");
  const auto pinned = bench::make_bench_table(4);

  engine::CampaignMatrix matrix;
  matrix.xlen = 4;
  matrix.modes = {qed::QedMode::EddiV, qed::QedMode::EdsepV};
  auto bugs = proc::table1_single_instruction_bugs();
  if (rows < bugs.size()) bugs.resize(rows);
  matrix.mutations = std::move(bugs);
  matrix.equivalences = &pinned->table;
  matrix.extra_opcodes = {isa::Opcode::ADD, isa::Opcode::ADDI};
  matrix.budget.max_bound = bound;
  matrix.budget.max_k = max_k;
  matrix.budget.sequential_provers = true;
  // Sharing on (LBD cap 8) with one epoch-synchronized helper entrant:
  // sequential mode runs the helper to completion first, its learnts
  // reach entrant 0 through the cone-digest vault at the matching
  // epochs, and the job counters — entrant 0's path, exactly as a race
  // reports — stay bit-reproducible. No conflict/memory budget is set
  // above, so the per-job determinism guard never zeroes this.
  matrix.budget.share_clauses = 8;
  matrix.budget.portfolio = 2;

  const engine::CampaignSpec spec = engine::expand(matrix, 1);

  std::error_code ec;
  const std::filesystem::path cache_dir =
      std::filesystem::temp_directory_path(ec) /
      ("campaign-perf-cache." + std::to_string(::getpid()));

  engine::ShardRunOptions options;
  options.pool.threads = 1;
  options.pool.cone_cache = std::make_shared<smt::ConeCache>();
  // This bench times solver work; the witness post-pass would re-derive
  // every cached FALSIFIED row on the warm run and skew the comparison.
  options.pool.witness.check = false;
  options.cache_dir = cache_dir.string();
  options.fingerprint = "bench=campaign_perf;xlen=4;modes=both";

  std::string run_error;
  const engine::CampaignReport cold = engine::run_sharded(spec, options, &run_error);
  if (!run_error.empty()) {
    std::fprintf(stderr, "campaign_perf: cold run failed: %s\n", run_error.c_str());
    return 1;
  }
  std::fprintf(stderr, "%s", cold.to_table().c_str());

  std::fprintf(stderr, "warm rerun against %s...\n", options.cache_dir.c_str());
  const engine::CampaignReport warm = engine::run_sharded(spec, options, &run_error);
  std::filesystem::remove_all(cache_dir, ec);
  if (!run_error.empty()) {
    std::fprintf(stderr, "campaign_perf: warm run failed: %s\n", run_error.c_str());
    return 1;
  }
  if (!verdicts_match(cold, warm, "warm")) return 1;
  const Totals w = tally(warm);
  std::fprintf(stderr,
               "warm run: %llu/%zu jobs from cache, %llu conflicts, %llu "
               "blasted clauses (cold: %llu / %llu)\n",
               static_cast<unsigned long long>(w.jobs_from_cache), warm.jobs.size(),
               static_cast<unsigned long long>(w.conflicts),
               static_cast<unsigned long long>(w.cnf_clauses),
               static_cast<unsigned long long>(tally(cold).conflicts),
               static_cast<unsigned long long>(tally(cold).cnf_clauses));

  // Sharing-off reference: same grid, share_clauses = 0, its own fresh
  // cone cache and no verdict-cache directory (the spec digest differs,
  // so reusing the cold cache would be refused anyway). Verdicts must
  // match the cold run exactly — sharing never changes answers.
  std::fprintf(stderr, "sharing-off reference run...\n");
  engine::CampaignMatrix ref_matrix = matrix;
  ref_matrix.budget.share_clauses = 0;
  const engine::CampaignSpec ref_spec = engine::expand(ref_matrix, 1);
  engine::ShardRunOptions ref_options;
  ref_options.pool.threads = 1;
  ref_options.pool.cone_cache = std::make_shared<smt::ConeCache>();
  ref_options.pool.witness.check = false;
  ref_options.fingerprint = "bench=campaign_perf;xlen=4;modes=both;share=off";
  const engine::CampaignReport noshare =
      engine::run_sharded(ref_spec, ref_options, &run_error);
  if (!run_error.empty()) {
    std::fprintf(stderr, "campaign_perf: sharing-off run failed: %s\n",
                 run_error.c_str());
    return 1;
  }
  if (!verdicts_match(cold, noshare, "sharing-off")) return 1;
  const Totals c = tally(cold);
  const Totals n = tally(noshare);
  std::fprintf(stderr,
               "sharing: %llu conflicts with the vault vs %llu without "
               "(%llu exported, %llu imported, %llu vault hits)\n",
               static_cast<unsigned long long>(c.conflicts),
               static_cast<unsigned long long>(n.conflicts),
               static_cast<unsigned long long>(c.clauses_exported),
               static_cast<unsigned long long>(c.clauses_imported),
               static_cast<unsigned long long>(c.vault_hits));

  const std::string json = perf_json(cold, warm, noshare, rows, bound, max_k);
  if (json_path == "-") {
    std::printf("%s", json.c_str());
  } else {
    if (!engine::write_text_file_atomic(json_path, json)) {
      std::fprintf(stderr, "campaign_perf: cannot write '%s'\n", json_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "perf report written to %s\n", json_path.c_str());
  }
  return cold.count(engine::Verdict::Unknown) == 0 ? 0 : 3;
}
