// ablate_hpf — ablation of the HPF-CEGIS priority components (DESIGN.md
// experiment A1): how much of the speedup comes from each ingredient of
// the priority function priority = Σ(c_j − α·χ_j) / Σ e_j ?
//
//   full        — choice + exclusion updates + α-penalty (the paper)
//   no-alpha    — α-penalty off (same-name components not demoted)
//   no-choice   — choice-weight rewards off
//   no-excl     — exclusion-weight penalties off
//   static      — all updates off: fixed uniform priorities
//
// Flags: --k N (default 3), --cap SEC (default 20), --cases "A,B,..."
// (default SUB,SLT,SRA,XORI,MULH).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "synth/cegis.hpp"
#include "util/stopwatch.hpp"

using namespace sepe;
using namespace sepe::synth;

int main(int argc, char** argv) {
  unsigned k = 3;
  double cap = 20.0;
  std::string case_list = "SUB,SLT,SRA,XORI,MULH";
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--k") && i + 1 < argc) k = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--cap") && i + 1 < argc) cap = std::atof(argv[++i]);
    if (!std::strcmp(argv[i], "--cases") && i + 1 < argc) case_list = argv[++i];
  }

  std::vector<SynthSpec> cases;
  {
    std::istringstream ss(case_list);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const auto op = isa::opcode_from_name(tok);
      if (op) cases.push_back(make_spec(*op));
    }
  }

  struct Variant {
    const char* name;
    HpfOptions opts;
  };
  std::vector<Variant> variants;
  {
    HpfOptions full;
    variants.push_back({"full", full});
    HpfOptions v = full;
    v.enable_alpha_penalty = false;
    variants.push_back({"no-alpha", v});
    v = full;
    v.enable_choice_updates = false;
    variants.push_back({"no-choice", v});
    v = full;
    v.enable_exclusion_updates = false;
    variants.push_back({"no-excl", v});
    v = full;
    v.enable_alpha_penalty = false;
    v.enable_choice_updates = false;
    v.enable_exclusion_updates = false;
    variants.push_back({"static", v});
  }

  const auto lib = make_standard_library();
  DriverOptions opts;
  opts.cegis.xlen = 8;
  opts.multiset_size = 3;
  opts.target_programs = k;
  opts.max_seconds = cap;

  std::printf("HPF-CEGIS ablation (k=%u, cap=%.0fs/case)\n\n", k, cap);
  std::printf("%-10s", "case");
  for (const Variant& v : variants) std::printf(" | %-16s", v.name);
  std::printf("\n");

  std::vector<double> totals(variants.size(), 0.0);
  for (const SynthSpec& spec : cases) {
    std::printf("%-10s", spec.name.c_str());
    for (std::size_t vi = 0; vi < variants.size(); ++vi) {
      // Fresh dict per (variant, case): isolates the priority policy.
      PriorityDict dict(lib.size(), variants[vi].opts);
      Stopwatch sw;
      const SynthesisResult r = hpf_cegis(spec, lib, opts, variants[vi].opts, &dict);
      const double t = sw.seconds();
      totals[vi] += t;
      std::printf(" | %6.2fs %3zu prog", t, r.programs.size());
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\n%-10s", "total");
  for (std::size_t vi = 0; vi < variants.size(); ++vi)
    std::printf(" | %6.2fs         ", totals[vi]);
  std::printf("\n");
  if (totals[0] > 0) {
    std::printf("%-10s", "vs full");
    for (std::size_t vi = 0; vi < variants.size(); ++vi)
      std::printf(" | %6.2fx         ", totals[vi] / totals[0]);
    std::printf("\n");
  }
  return 0;
}
