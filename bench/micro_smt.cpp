// micro_smt — google-benchmark microbenchmarks of the solver substrate
// (DESIGN.md experiment A2): bit-blasting throughput, SAT solving on the
// circuit classes the QED models are made of (adders, shifters, mux
// trees, comparators), CEGIS-style incremental solving, and the cost of
// one BMC unrolling step of the pipelined DUV.
#include <benchmark/benchmark.h>

#include "bmc/bmc.hpp"
#include "proc/processor.hpp"
#include "qed/qed_module.hpp"
#include "smt/smt_solver.hpp"
#include "synth/cegis.hpp"
#include "util/rng.hpp"

namespace {

using namespace sepe;
using smt::Result;
using smt::SmtSolver;
using smt::TermManager;
using smt::TermRef;

// Validity of an adder identity: (a + b) - b == a at the given width.
void BM_AdderValidity(benchmark::State& state) {
  const unsigned w = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    TermManager mgr;
    SmtSolver s(mgr);
    const TermRef a = mgr.mk_var("a", w), b = mgr.mk_var("b", w);
    s.assert_formula(mgr.mk_ne(mgr.mk_sub(mgr.mk_add(a, b), b), a));
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_AdderValidity)->Arg(16)->Arg(32)->Arg(64);

// Barrel shifter: shl by a symbolic amount equals repeated doubling.
void BM_ShifterValidity(benchmark::State& state) {
  const unsigned w = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    TermManager mgr;
    SmtSolver s(mgr);
    const TermRef a = mgr.mk_var("a", w);
    const TermRef one = mgr.mk_const(w, 1);
    s.assert_formula(mgr.mk_ne(mgr.mk_shl(a, one), mgr.mk_add(a, a)));
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_ShifterValidity)->Arg(16)->Arg(32);

// 32-way register-file mux tree (the DUV's read port) solved for a
// specific selected register.
void BM_RegfileMuxSolve(benchmark::State& state) {
  const unsigned w = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    TermManager mgr;
    SmtSolver s(mgr);
    const TermRef idx = mgr.mk_var("idx", 5);
    std::vector<TermRef> regs;
    for (unsigned i = 0; i < 32; ++i)
      regs.push_back(mgr.mk_var("x" + std::to_string(i), w));
    TermRef v = regs[0];
    for (unsigned i = 1; i < 32; ++i)
      v = mgr.mk_ite(mgr.mk_eq(idx, mgr.mk_const(5, i)), regs[i], v);
    s.assert_formula(mgr.mk_eq(v, mgr.mk_const(w, 0x5a)));
    s.assert_formula(mgr.mk_eq(idx, mgr.mk_const(5, 17)));
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_RegfileMuxSolve)->Arg(8)->Arg(32);

// Incremental assumption solving, the CEGIS access pattern: one shared
// encoding queried under many different assumption sets.
void BM_IncrementalAssumptions(benchmark::State& state) {
  TermManager mgr;
  SmtSolver s(mgr);
  const unsigned w = 16;
  const TermRef a = mgr.mk_var("a", w), b = mgr.mk_var("b", w);
  const TermRef sum = mgr.mk_add(a, b);
  s.assert_formula(mgr.mk_ult(a, mgr.mk_const(w, 1000)));
  Rng rng(1);
  for (auto _ : state) {
    const TermRef av = mgr.mk_eq(a, mgr.mk_const(w, rng.below(1000)));
    const TermRef sv = mgr.mk_eq(sum, mgr.mk_const(w, rng.below(1 << 15)));
    benchmark::DoNotOptimize(s.check({av, sv}));
  }
}
BENCHMARK(BM_IncrementalAssumptions);

// One CEGIS call on the paper's Listing-1 multiset.
void BM_CegisListing1(benchmark::State& state) {
  const auto lib = synth::make_standard_library();
  auto comp = [&](const char* n) -> const synth::Component* {
    for (const auto& c : lib)
      if (c.name == n) return &c;
    return nullptr;
  };
  const synth::SynthSpec spec = synth::make_spec(isa::Opcode::SUB);
  synth::CegisOptions o;
  o.xlen = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    auto p = synth::cegis_multiset(spec, {comp("NOT"), comp("ADD"), comp("NOT")}, o);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_CegisListing1)->Arg(8)->Arg(16)->Arg(32);

// Cost of unrolling + solving one more bound of the healthy EDDI-V model
// (the inner loop of every Table-1/Figure-4 run).
void BM_QedModelBmcStep(benchmark::State& state) {
  const unsigned xlen = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    TermManager mgr;
    ts::TransitionSystem ts(mgr);
    proc::ProcConfig config;
    config.xlen = xlen;
    config.mem_words = 8;
    config.opcodes = {isa::Opcode::ADD, isa::Opcode::XOR};
    qed::QedOptions qo;
    qo.mode = qed::QedMode::EddiV;
    qed::build_qed_model(ts, config, qo);
    bmc::Bmc checker(ts);
    bmc::BmcOptions bo;
    bo.max_bound = 3;
    benchmark::DoNotOptimize(checker.check(bo));
  }
}
BENCHMARK(BM_QedModelBmcStep)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Term-construction throughput: hash-consing a wide balanced xor tree.
void BM_TermConstruction(benchmark::State& state) {
  for (auto _ : state) {
    TermManager mgr;
    std::vector<TermRef> layer;
    for (unsigned i = 0; i < 256; ++i)
      layer.push_back(mgr.mk_var("v" + std::to_string(i), 32));
    while (layer.size() > 1) {
      std::vector<TermRef> next;
      for (std::size_t i = 0; i + 1 < layer.size(); i += 2)
        next.push_back(mgr.mk_xor(layer[i], layer[i + 1]));
      layer = std::move(next);
    }
    benchmark::DoNotOptimize(layer[0]);
  }
}
BENCHMARK(BM_TermConstruction);

// Concrete evaluation of a deep shared DAG (the TsSim/witness path).
void BM_EvalSharedDag(benchmark::State& state) {
  TermManager mgr;
  const TermRef a = mgr.mk_var("a", 32);
  TermRef t = a;
  for (int i = 0; i < 2000; ++i) t = mgr.mk_add(mgr.mk_xor(t, a), mgr.mk_const(32, i));
  smt::Assignment assign{{a, BitVec(32, 0x1234)}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(smt::eval_term(mgr, t, assign));
  }
}
BENCHMARK(BM_EvalSharedDag);

}  // namespace

BENCHMARK_MAIN();
