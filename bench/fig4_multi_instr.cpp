// fig4_multi_instr — reproduces Figure 4: twenty injected
// multiple-instruction bugs, detected by BOTH methods; per bug the
// detection runtime and counterexample length of SQED (EDDI-V) and
// SEPE-SQED (EDSEP-V) are reported, plus the SQED/SEPE ratio curves of
// the paper (runtime ratio and counterexample-length ratio).
//
// Flags: --xlen W (default 6), --bound N (default 12), --cap SEC
// (per-run wall cap, default 120), --rows N (first N bugs).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "qed_bench_util.hpp"

using namespace sepe;
using namespace sepe::bench;
using isa::Opcode;

int main(int argc, char** argv) {
  unsigned xlen = 4, bound = 12, rows_limit = 20;
  double cap = 120.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--xlen") && i + 1 < argc) xlen = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--bound") && i + 1 < argc) bound = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--cap") && i + 1 < argc) cap = std::atof(argv[++i]);
    if (!std::strcmp(argv[i], "--rows") && i + 1 < argc)
      rows_limit = std::atoi(argv[++i]);
  }

  std::printf("Figure 4 — multiple-instruction bugs (xlen=%u, bound=%u, cap=%.0fs)\n",
              xlen, bound, cap);
  std::printf("synthesizing the pinned equivalence table...\n");
  auto pinned = make_bench_table(xlen);
  // MUL equivalence (negation conjugation) for the MUL-consumer bug.
  pinned->add("MUL", synth::make_spec(Opcode::MUL), {"NEG", "MUL_C", "NEG"}, xlen);

  const bool with_memory = true;
  const auto bugs = proc::figure4_multi_instruction_bugs(with_memory);

  std::printf("\n%-3s %-26s | %-15s | %-15s | %-8s %-8s\n", "No.", "bug", "SQED",
              "SEPE-SQED", "t-ratio", "len-ratio");
  std::printf("-------------------------------+-----------------+-----------------+"
              "------------------\n");

  unsigned both = 0, done = 0, sepe_shorter_or_equal = 0;
  double tratio_sum = 0;
  unsigned tratio_n = 0;
  for (std::size_t i = 0; i < bugs.size() && i < rows_limit; ++i) {
    const proc::Mutation& bug = bugs[i];

    proc::ProcConfig config;
    config.xlen = xlen;
    // Largest power-of-two memory the address space supports (cap 8).
    config.mem_words = xlen >= 5 ? 8 : (1u << (xlen - 2));
    // Producer/consumer mix: ADDI produces, ADD consumes; add the bug's
    // own target opcode and its replay's opcodes.
    config.opcodes = {Opcode::ADD, Opcode::ADDI};
    const auto add_unique = [&](Opcode op) {
      for (Opcode o : config.opcodes)
        if (o == op) return;
      config.opcodes.push_back(op);
    };
    if (bug.target != Opcode::NOP) add_unique(bug.target);
    for (Opcode base : std::vector<Opcode>(config.opcodes))
      for (Opcode op : replay_opcodes(*pinned, base)) add_unique(op);

    const QedRunResult sqed = run_qed_bmc(qed::QedMode::EddiV, config, nullptr, &bug,
                                          bound, cap);
    const QedRunResult sepe = run_qed_bmc(qed::QedMode::EdsepV, config, &pinned->table,
                                          &bug, bound, cap);

    char sqed_cell[32], sepe_cell[32];
    if (sqed.found)
      std::snprintf(sqed_cell, sizeof sqed_cell, "%.2fs len %u", sqed.seconds,
                    sqed.trace_length);
    else
      std::snprintf(sqed_cell, sizeof sqed_cell, "missed");
    if (sepe.found)
      std::snprintf(sepe_cell, sizeof sepe_cell, "%.2fs len %u", sepe.seconds,
                    sepe.trace_length);
    else
      std::snprintf(sepe_cell, sizeof sepe_cell, "missed");

    if (sqed.found && sepe.found) {
      ++both;
      const double tr = sepe.seconds > 0 ? sqed.seconds / sepe.seconds : 0;
      const double lr =
          sepe.trace_length > 0 ? double(sqed.trace_length) / sepe.trace_length : 0;
      tratio_sum += tr;
      ++tratio_n;
      if (sepe.trace_length <= sqed.trace_length) ++sepe_shorter_or_equal;
      std::printf("%-3zu %-26s | %-15s | %-15s | %-8.2f %-8.2f\n", i + 1,
                  bug.name.substr(0, 26).c_str(), sqed_cell, sepe_cell, tr, lr);
    } else {
      std::printf("%-3zu %-26s | %-15s | %-15s | %-8s %-8s\n", i + 1,
                  bug.name.substr(0, 26).c_str(), sqed_cell, sepe_cell, "-", "-");
    }
    std::fflush(stdout);
    ++done;
  }

  std::printf("\nboth methods detected %u/%u bugs (paper: all)\n", both, done);
  if (tratio_n)
    std::printf("mean SQED/SEPE runtime ratio: %.2f  |  SEPE trace <= SQED trace on "
                "%u/%u bugs\n", tratio_sum / tratio_n, sepe_shorter_or_equal, tratio_n);
  return 0;
}
