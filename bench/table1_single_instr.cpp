// table1_single_instr — reproduces Table 1: thirteen injected
// single-instruction bugs; SEPE-SQED (EDSEP-V) detects every one, SQED
// (EDDI-V) detects none.
//
// Per row: the mutated DUV is model-checked twice — once under the
// EDSEP-V module (expect a counterexample: detection time reported) and
// once under the EDDI-V module (expect *no* counterexample up to the
// bound: reported as "-", exactly the paper's column). The DUV opcode
// set per row is the target instruction plus its replay's opcodes, the
// smallest design that exercises the bug (the paper's RIDECORE carries
// the full ISA; the shape — detect vs not — is what transfers).
//
// Flags: --xlen W (datapath, default 6), --bound N (BMC bound, default
// 10), --sqed-cap SEC (EDDI-V per-row wall cap, default 60), --rows N.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "qed_bench_util.hpp"

using namespace sepe;
using namespace sepe::bench;
using isa::Opcode;

int main(int argc, char** argv) {
  unsigned xlen = 4, bound = 10, rows_limit = 13;
  double sqed_cap = 60.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--xlen") && i + 1 < argc) xlen = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--bound") && i + 1 < argc) bound = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--sqed-cap") && i + 1 < argc) sqed_cap = std::atof(argv[++i]);
    if (!std::strcmp(argv[i], "--rows") && i + 1 < argc) rows_limit = std::atoi(argv[++i]);
  }

  std::printf("Table 1 — injected single-instruction bugs (xlen=%u, bound=%u)\n", xlen,
              bound);
  std::printf("synthesizing the pinned equivalence table...\n");
  const auto pinned = make_bench_table(xlen);

  const auto bugs = proc::table1_single_instruction_bugs();
  std::printf("\n%-8s %-28s | %-14s | %s\n", "Type", "Injected bug", "SEPE-SQED",
              "SQED");
  std::printf("---------------------------------------+----------------+------------\n");

  unsigned sepe_found = 0, sqed_found = 0, done = 0;
  for (std::size_t i = 0; i < bugs.size() && i < rows_limit; ++i) {
    const proc::Mutation& bug = bugs[i];

    // DUV opcode set: the target + everything its replay issues.
    proc::ProcConfig config;
    config.xlen = xlen;
    // Largest power-of-two memory the address space supports (cap 8).
    config.mem_words = xlen >= 5 ? 8 : (1u << (xlen - 2));
    config.opcodes = replay_opcodes(*pinned, bug.target);
    bool has_target = false;
    for (Opcode op : config.opcodes) has_target |= (op == bug.target);
    if (!has_target) config.opcodes.push_back(bug.target);

    const QedRunResult sepe = run_qed_bmc(qed::QedMode::EdsepV, config, &pinned->table,
                                          &bug, bound);
    // SQED column: sweep at least two bounds past the depth where
    // SEPE-SQED already sees the bug — enough to substantiate the "-".
    const unsigned sqed_bound = sepe.found ? sepe.trace_length + 2 : bound;
    const QedRunResult sqed = run_qed_bmc(qed::QedMode::EddiV, config, nullptr, &bug,
                                          sqed_bound, sqed_cap);

    char sepe_cell[32], sqed_cell[32];
    if (sepe.found) {
      std::snprintf(sepe_cell, sizeof sepe_cell, "%.2fs (len %u)", sepe.seconds,
                    sepe.trace_length);
      ++sepe_found;
    } else {
      std::snprintf(sepe_cell, sizeof sepe_cell, "MISSED");
    }
    if (sqed.found) {
      std::snprintf(sqed_cell, sizeof sqed_cell, "%.2fs (!)", sqed.seconds);
      ++sqed_found;
    } else {
      // The paper's "-": no counterexample. Distinguish a finished bound
      // sweep from a wall-cap stop (both support the "-" verdict; the cap
      // is reported for honesty).
      std::snprintf(sqed_cell, sizeof sqed_cell, sqed.hit_limit ? "- (cap %.0fs)" : "-",
                    sqed.seconds);
    }
    std::printf("%-8s %-28s | %-14s | %s\n", isa::opcode_name(bug.target),
                bug.description.substr(0, 28).c_str(), sepe_cell, sqed_cell);
    std::fflush(stdout);
    ++done;
  }

  std::printf("\nSEPE-SQED detected %u/%u, SQED detected %u/%u "
              "(paper: 13/13 vs 0/13)\n", sepe_found, done, sqed_found, done);
  return 0;
}
