// table1_single_instr — reproduces Table 1: thirteen injected
// single-instruction bugs; SEPE-SQED (EDSEP-V) detects every one, SQED
// (EDDI-V) detects none.
//
// Runs as two campaigns on the parallel verification engine
// (src/engine): first every EDSEP-V job fans out across the worker
// pool (expect a counterexample per row: detection time reported), then
// the EDDI-V jobs run with each row's bound set two past the depth
// where EDSEP-V already saw the bug (expect *no* counterexample:
// reported as "-", exactly the paper's column). The DUV opcode set per
// row is the target instruction plus its replay's opcodes, the
// smallest design that exercises the bug (the paper's RIDECORE carries
// the full ISA; the shape — detect vs not — is what transfers).
//
// Flags: --xlen W (datapath, default 4), --bound N (BMC bound, default
// 10), --sqed-cap SEC (EDDI-V per-row wall cap, default 60), --rows N,
// --threads N (worker pool size, default: hardware concurrency),
// --shard I/N (run only the deterministic row-shard I of N, so the
// thirteen rows can be split across machines and the printed sub-tables
// concatenated).
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "engine/shard.hpp"
#include "qed_bench_util.hpp"

using namespace sepe;
using namespace sepe::bench;
using isa::Opcode;

int main(int argc, char** argv) {
  unsigned xlen = 4, bound = 10, rows_limit = 13, threads = 0;
  double sqed_cap = 60.0;
  engine::ShardSpec shard;  // default 0/1 = every row
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--xlen") && i + 1 < argc) xlen = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--bound") && i + 1 < argc) bound = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--sqed-cap") && i + 1 < argc)
      sqed_cap = std::atof(argv[++i]);
    if (!std::strcmp(argv[i], "--rows") && i + 1 < argc)
      rows_limit = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--threads") && i + 1 < argc)
      threads = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--shard") && i + 1 < argc) {
      std::string error;
      if (!engine::parse_shard(argv[++i], &shard, &error)) {
        std::fprintf(stderr, "table1_single_instr: %s\n", error.c_str());
        return 2;
      }
    }
  }

  std::printf("Table 1 — injected single-instruction bugs (xlen=%u, bound=%u)\n", xlen,
              bound);
  std::printf("synthesizing the pinned equivalence table...\n");
  const auto pinned = make_bench_table(xlen);

  auto bugs = proc::table1_single_instruction_bugs();
  if (rows_limit < bugs.size()) bugs.resize(rows_limit);

  // Optional scale-out: keep only this shard's rows. Each row yields one
  // EDSEP-V and one EDDI-V job whose budget depends on that row's
  // EDSEP-V result, so rows (not jobs) are the sharding unit here.
  if (shard.count > 1) {
    std::vector<std::string> ids;
    for (const proc::Mutation& bug : bugs) ids.push_back(bug.name);
    const std::vector<unsigned> assignment = engine::shard_assignment(ids, shard.count);
    std::vector<proc::Mutation> mine;
    for (std::size_t i = 0; i < bugs.size(); ++i)
      if (assignment[i] == shard.index) mine.push_back(bugs[i]);
    std::printf("shard %u/%u: %zu of %zu rows\n", shard.index, shard.count,
                mine.size(), bugs.size());
    bugs = std::move(mine);
    if (bugs.empty()) {
      std::printf("no rows fall into this shard — nothing to do\n");
      return 0;
    }
  }

  // Per-row DUV derivation (target + its replay's opcodes, memory sized to
  // the address space) shared with engine::expand via derive_duv_config.
  engine::CampaignMatrix matrix;
  matrix.xlen = xlen;
  matrix.mem_words = 8;
  matrix.equivalences = &pinned->table;
  const auto job_config = [&](const proc::Mutation& bug) {
    return engine::derive_duv_config(matrix, &bug);
  };

  engine::CampaignOptions pool;
  pool.threads = threads;

  // --- campaign 1: SEPE-SQED (EDSEP-V), one job per row ---
  engine::CampaignSpec sepe_spec;
  for (const proc::Mutation& bug : bugs) {
    engine::JobBudget budget;
    budget.max_bound = bound;
    budget.race_k_induction = false;  // Table 1 is a pure BMC experiment
    sepe_spec.jobs.push_back(engine::make_qed_job(bug.name + "/EDSEP-V",
                                                  qed::QedMode::EdsepV, job_config(bug),
                                                  bug, &pinned->table, budget));
  }
  const engine::CampaignReport sepe = engine::run_campaign(sepe_spec, pool);

  // --- campaign 2: SQED (EDDI-V); sweep at least two bounds past the
  // depth where SEPE-SQED already sees the bug — enough to substantiate
  // the "-" — under the per-row wall cap. ---
  engine::CampaignSpec sqed_spec;
  for (std::size_t i = 0; i < bugs.size(); ++i) {
    engine::JobBudget budget;
    budget.max_bound = sepe.jobs[i].verdict == engine::Verdict::Falsified
                           ? sepe.jobs[i].trace_length + 2
                           : bound;
    budget.max_seconds = sqed_cap;
    budget.race_k_induction = false;
    sqed_spec.jobs.push_back(engine::make_qed_job(bugs[i].name + "/EDDI-V",
                                                  qed::QedMode::EddiV,
                                                  job_config(bugs[i]), bugs[i], nullptr,
                                                  budget));
  }
  const engine::CampaignReport sqed = engine::run_campaign(sqed_spec, pool);

  std::printf("\n%-8s %-28s | %-14s | %s\n", "Type", "Injected bug", "SEPE-SQED",
              "SQED");
  std::printf("---------------------------------------+----------------+------------\n");

  unsigned sepe_found = 0, sqed_found = 0;
  for (std::size_t i = 0; i < bugs.size(); ++i) {
    const engine::JobResult& s = sepe.jobs[i];
    const engine::JobResult& q = sqed.jobs[i];
    char sepe_cell[32], sqed_cell[32];
    if (s.verdict == engine::Verdict::Falsified) {
      std::snprintf(sepe_cell, sizeof sepe_cell, "%.2fs (len %u)", s.seconds,
                    s.trace_length);
      ++sepe_found;
    } else {
      std::snprintf(sepe_cell, sizeof sepe_cell, "MISSED");
    }
    if (q.verdict == engine::Verdict::Falsified) {
      std::snprintf(sqed_cell, sizeof sqed_cell, "%.2fs (!)", q.seconds);
      ++sqed_found;
    } else {
      // The paper's "-": no counterexample. Distinguish a finished bound
      // sweep from a wall-cap stop (both support the "-" verdict; the cap
      // is reported for honesty).
      std::snprintf(sqed_cell, sizeof sqed_cell,
                    q.hit_resource_limit ? "- (cap %.0fs)" : "-", q.seconds);
    }
    std::printf("%-8s %-28s | %-14s | %s\n", isa::opcode_name(bugs[i].target),
                bugs[i].description.substr(0, 28).c_str(), sepe_cell, sqed_cell);
  }

  std::printf("\nSEPE-SQED detected %u/%zu, SQED detected %u/%zu "
              "(paper: 13/13 vs 0/13)\n",
              sepe_found, bugs.size(), sqed_found, bugs.size());
  std::printf("engine: %u threads, %.2fs + %.2fs wall for the two campaigns\n",
              sepe.threads, sepe.wall_seconds, sqed.wall_seconds);
  return 0;
}
