// fig3_synthesis — reproduces Figure 3: per-case synthesis time of
// HPF-CEGIS vs iterative CEGIS over the 26 original-instruction cases,
// on the 29-component standard library.
//
// Paper setup (§6.1): weights and α initialized to 1, increment 1;
// early-stop once k semantically equivalent programs of >= 3 components
// are synthesized; iterative CEGIS visits the same multisets in shuffled
// order. The absolute times depend on the in-repo SMT core (see
// EXPERIMENTS.md); the reported *shape* is the per-case and average
// HPF/iterative ratio.
//
// Flags: --k N (programs per case, default 3), --cap SEC (per-case
// per-algorithm wall cap, default 20), --cases N (first N cases only),
// --xlen W (synthesis width, default 8).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "synth/cegis.hpp"
#include "util/stopwatch.hpp"

using namespace sepe;
using namespace sepe::synth;

int main(int argc, char** argv) {
  unsigned k = 3, cases_limit = 26, xlen = 8;
  double cap = 20.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--k") && i + 1 < argc) k = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--cap") && i + 1 < argc) cap = std::atof(argv[++i]);
    if (!std::strcmp(argv[i], "--cases") && i + 1 < argc)
      cases_limit = std::atoi(argv[++i]);
    if (!std::strcmp(argv[i], "--xlen") && i + 1 < argc) xlen = std::atoi(argv[++i]);
  }

  const auto lib = make_standard_library();
  const auto cases = make_figure3_cases();

  DriverOptions opts;
  opts.cegis.xlen = xlen;
  opts.multiset_size = 3;  // "at least three components"
  opts.target_programs = k;
  opts.max_seconds = cap;

  HpfOptions hpf;  // paper defaults: weights 1, increments 1, alpha 1
  PriorityDict shared_dict(lib.size(), hpf);  // Algorithm 1 line 2: one dict for all g

  std::printf("Figure 3 — synthesis time, HPF-CEGIS vs iterative CEGIS\n");
  std::printf("library: 29 components (10 NIC / 10 DIC / 9 CIC), n=3, k=%u, xlen=%u, "
              "cap=%.0fs/case\n\n", k, xlen, cap);
  std::printf("%-8s | %-10s %-9s %-7s | %-10s %-9s %-7s | %s\n", "case", "HPF(s)",
              "tried", "found", "iter(s)", "tried", "found", "iter/HPF");
  std::printf("---------+--------------------------------+----------------------------"
              "----+---------\n");

  double hpf_total = 0, iter_total = 0, ratio_sum = 0;
  unsigned measured = 0;
  for (unsigned i = 0; i < cases.size() && i < cases_limit; ++i) {
    const SynthSpec& spec = cases[i];

    Stopwatch sw1;
    const SynthesisResult hr = hpf_cegis(spec, lib, opts, hpf, &shared_dict);
    const double ht = sw1.seconds();

    Stopwatch sw2;
    const SynthesisResult ir = iterative_cegis(spec, lib, opts);
    const double it = sw2.seconds();

    const double ratio = ht > 0 ? it / ht : 0.0;
    std::printf("%-8s | %-10.2f %-9u %-7zu | %-10.2f %-9u %-7zu | %.2fx\n",
                spec.name.c_str(), ht, hr.multisets_tried, hr.programs.size(), it,
                ir.multisets_tried, ir.programs.size(), ratio);
    std::fflush(stdout);
    hpf_total += ht;
    iter_total += it;
    if (!hr.programs.empty() && !ir.programs.empty()) {
      ratio_sum += ratio;
      ++measured;
    }
  }

  std::printf("\ntotals: HPF %.1fs, iterative %.1fs", hpf_total, iter_total);
  if (iter_total > 0)
    std::printf("  =>  overall time reduction %.0f%% (paper reports ~50%%)\n",
                100.0 * (1.0 - hpf_total / iter_total));
  if (measured > 0)
    std::printf("mean per-case iterative/HPF speedup: %.2fx over %u cases\n",
                ratio_sum / measured, measured);
  return 0;
}
