#!/usr/bin/env python3
"""Markdown link checker for the repo's documentation set.

Verifies that every relative link target in the given markdown files
exists on disk (files or directories). External links (http/https/
mailto) are listed but not fetched — CI runners should not depend on
the network for a docs check, so the job that runs this is advisory
for everything it cannot decide locally.

Usage: check_links.py FILE.md [FILE.md ...]
Exit codes: 0 all relative links resolve; 1 at least one is broken;
2 usage error.
"""

import os
import re
import sys

# Inline links: [text](target) — tolerates titles ("...") and trims
# anchors; reference definitions: [label]: target.
INLINE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

EXTERNAL = ("http://", "https://", "mailto:")


def targets(text):
    for match in INLINE.finditer(text):
        yield match.group(1)
    for match in REFDEF.finditer(text):
        yield match.group(1)


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    broken = []
    external = 0
    checked = 0
    for path in argv:
        try:
            with open(path, encoding="utf-8") as handle:
                text = handle.read()
        except OSError as error:
            broken.append((path, "<self>", str(error)))
            continue
        base = os.path.dirname(path)
        for target in targets(text):
            if target.startswith(EXTERNAL):
                external += 1
                continue
            if target.startswith("#"):  # intra-document anchor
                continue
            checked += 1
            relative = target.split("#", 1)[0]
            resolved = os.path.normpath(os.path.join(base, relative))
            if not os.path.exists(resolved):
                broken.append((path, target, f"missing: {resolved}"))
    for path, target, why in broken:
        print(f"BROKEN  {path}: ({target}) -> {why}")
    print(
        f"{checked} relative link(s) checked, {len(broken)} broken, "
        f"{external} external link(s) not fetched"
    )
    return 1 if broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
