// sepe-run — CLI driver for the parallel verification-campaign engine.
//
// Expands a declarative campaign (instruction classes × QED mode ×
// injected mutation) into jobs, fans them out over a worker pool (each
// job racing BMC against k-induction), and prints per-job stats plus an
// optional machine-readable JSON report. Verdicts are deterministic for
// a fixed spec whatever --threads says, as long as budgets are
// deterministic: --conflicts qualifies, --time-cap does not (a wall cap
// can fire earlier under core contention) — see src/engine/campaign.hpp.
//
// Examples:
//   sepe-run --bugs table1 --rows 8 --threads 4
//   sepe-run --bugs xor_as_or,add_wrong --modes edsep --json report.json
//   sepe-run --healthy --max-k 6 --bound 6
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "engine/campaign.hpp"
#include "engine/pinned_table.hpp"
#include "proc/mutations.hpp"
#include "util/stopwatch.hpp"

using namespace sepe;
using isa::Opcode;

namespace {

void usage() {
  std::printf(
      "sepe-run — parallel SEPE-SQED verification campaigns\n"
      "\n"
      "usage: sepe-run [options]\n"
      "  --threads N      worker threads (default: hardware concurrency)\n"
      "  --xlen W         DUV datapath width (default 4)\n"
      "  --bound N        BMC bound sweep limit (default 10)\n"
      "  --max-k N        k-induction depth limit (default 10)\n"
      "  --no-race        disable the k-induction prover (BMC only)\n"
      "  --modes M        eddi | edsep | both (default both)\n"
      "  --bugs LIST      comma-separated bug names, or: table1 | fig4 | all\n"
      "                   (default table1)\n"
      "  --rows N         only the first N instruction classes of the catalog\n"
      "  --healthy        verify the unmutated DUV instead of injecting bugs\n"
      "  --conflicts N    per-solver-call conflict budget (default none;\n"
      "                   deterministic, unlike --time-cap)\n"
      "  --time-cap SEC   per-job wall-clock cap (default none; verdicts under\n"
      "                   a wall cap may vary with load and --threads)\n"
      "  --seed S         RNG seed recorded in the report (default 1)\n"
      "  --json FILE      write a JSON report ('-' = stdout)\n"
      "  --stable-json    JSON omits timing/race fields (byte-deterministic)\n"
      "  --witness        print the counterexample trace of falsified jobs\n"
      "  --list-bugs      list the injectable bug catalog and exit\n");
}

void list_bugs() {
  std::printf("single-instruction bugs (Table 1):\n");
  for (const proc::Mutation& m : proc::table1_single_instruction_bugs())
    std::printf("  %-28s %s\n", m.name.c_str(), m.description.c_str());
  std::printf("multiple-instruction bugs (Figure 4):\n");
  for (const proc::Mutation& m : proc::figure4_multi_instruction_bugs(true))
    std::printf("  %-28s %s\n", m.name.c_str(), m.description.c_str());
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string piece = s.substr(start, comma - start);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  unsigned threads = 0, xlen = 4, bound = 10, max_k = 10, rows = ~0u;
  bool race = true, healthy = false, stable_json = false, print_witness = false;
  std::uint64_t conflicts = 0, seed = 1;
  double time_cap = 0.0;
  std::string modes_arg = "both", bugs_arg = "table1", json_path;

  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--threads")) threads = std::atoi(next("--threads"));
    else if (!std::strcmp(argv[i], "--xlen")) xlen = std::atoi(next("--xlen"));
    else if (!std::strcmp(argv[i], "--bound")) bound = std::atoi(next("--bound"));
    else if (!std::strcmp(argv[i], "--max-k")) max_k = std::atoi(next("--max-k"));
    else if (!std::strcmp(argv[i], "--no-race")) race = false;
    else if (!std::strcmp(argv[i], "--modes")) modes_arg = next("--modes");
    else if (!std::strcmp(argv[i], "--bugs")) bugs_arg = next("--bugs");
    else if (!std::strcmp(argv[i], "--rows")) rows = std::atoi(next("--rows"));
    else if (!std::strcmp(argv[i], "--healthy")) healthy = true;
    else if (!std::strcmp(argv[i], "--conflicts")) conflicts = std::atoll(next("--conflicts"));
    else if (!std::strcmp(argv[i], "--time-cap")) time_cap = std::atof(next("--time-cap"));
    else if (!std::strcmp(argv[i], "--seed")) seed = std::atoll(next("--seed"));
    else if (!std::strcmp(argv[i], "--json")) json_path = next("--json");
    else if (!std::strcmp(argv[i], "--stable-json")) stable_json = true;
    else if (!std::strcmp(argv[i], "--witness")) print_witness = true;
    else if (!std::strcmp(argv[i], "--list-bugs")) { list_bugs(); return 0; }
    else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag '%s' — try --help\n", argv[i]);
      return 2;
    }
  }
  if (xlen < 2 || xlen > 32) {
    std::fprintf(stderr, "--xlen must be in [2, 32], got %u\n", xlen);
    return 2;
  }

  engine::CampaignMatrix matrix;
  matrix.xlen = xlen;
  matrix.budget.max_bound = bound;
  matrix.budget.max_k = max_k;
  matrix.budget.race_k_induction = race;
  matrix.budget.conflict_budget = conflicts;
  matrix.budget.max_seconds = time_cap;

  if (modes_arg == "eddi") {
    matrix.modes = {qed::QedMode::EddiV};
  } else if (modes_arg == "edsep") {
    matrix.modes = {qed::QedMode::EdsepV};
  } else if (modes_arg == "both") {
    matrix.modes = {qed::QedMode::EddiV, qed::QedMode::EdsepV};
  } else {
    std::fprintf(stderr, "unknown --modes '%s' (eddi|edsep|both)\n", modes_arg.c_str());
    return 2;
  }

  // Resolve the mutation list.
  const auto table1 = proc::table1_single_instruction_bugs();
  const auto fig4 = proc::figure4_multi_instruction_bugs(/*with_memory=*/true);
  if (!healthy) {
    std::vector<proc::Mutation> selected;
    if (bugs_arg == "table1") {
      selected = table1;
    } else if (bugs_arg == "fig4") {
      selected = fig4;
    } else if (bugs_arg == "all") {
      selected = table1;
      selected.insert(selected.end(), fig4.begin(), fig4.end());
    } else {
      for (const std::string& name : split_csv(bugs_arg)) {
        bool found = false;
        for (const auto* catalog : {&table1, &fig4}) {
          for (const proc::Mutation& m : *catalog)
            if (m.name == name) {
              selected.push_back(m);
              found = true;
            }
        }
        if (!found) {
          std::fprintf(stderr, "unknown bug '%s' — try --list-bugs\n", name.c_str());
          return 2;
        }
      }
    }
    if (rows < selected.size()) selected.resize(rows);
    if (selected.empty()) {
      std::fprintf(stderr, "no bugs selected (use --healthy for an unmutated DUV)\n");
      return 2;
    }
    matrix.mutations = std::move(selected);
  }

  // Figure-4 interaction bugs need a producer/consumer instruction mix in
  // the DUV; the campaign derives the rest (target + replay opcodes).
  matrix.extra_opcodes = {Opcode::ADD, Opcode::ADDI};

  const bool needs_table = modes_arg != "eddi";
  std::unique_ptr<engine::PinnedTable> pinned;
  if (needs_table) {
    std::printf("synthesizing the pinned equivalence table (xlen=%u)...\n", xlen);
    Stopwatch synth_clock;
    pinned = engine::make_pinned_table(xlen);
    std::printf("table ready: %zu instructions, %.2fs\n\n", pinned->table.size(),
                synth_clock.seconds());
    matrix.equivalences = &pinned->table;
  }

  const engine::CampaignSpec spec = engine::expand(matrix, seed);
  std::printf("campaign: %zu jobs (%zu instruction classes × %zu modes), "
              "bound=%u, max-k=%u%s\n\n",
              spec.jobs.size(),
              matrix.mutations.empty() ? 1 : matrix.mutations.size(),
              matrix.modes.size(), bound, max_k, race ? "" : ", race disabled");

  engine::CampaignOptions options;
  options.threads = threads;
  const engine::CampaignReport report = engine::run_campaign(spec, options);

  std::printf("%s", report.to_table().c_str());
  if (print_witness) {
    for (const engine::JobResult& j : report.jobs)
      if (j.verdict == engine::Verdict::Falsified && !j.witness.empty())
        std::printf("\n[%s]\n%s", j.name.c_str(), j.witness.c_str());
  }

  if (!json_path.empty()) {
    const std::string json = report.to_json(/*include_timing=*/!stable_json);
    if (json_path == "-") {
      std::printf("\n%s", json.c_str());
    } else {
      std::ofstream out(json_path);
      if (!out) {
        std::fprintf(stderr, "cannot write '%s'\n", json_path.c_str());
        return 1;
      }
      out << json;
      std::printf("\nJSON report written to %s\n", json_path.c_str());
    }
  }

  // Exit status: 0 when every job reached a definite or clean verdict.
  return report.count(engine::Verdict::Unknown) == 0 ? 0 : 3;
}
