// sepe-run — CLI driver for the parallel verification-campaign engine.
//
// Campaigns come from *workload families* (src/engine/workload.hpp):
//
//   * the default QED mode expands a declarative cross-product
//     (instruction classes × QED mode × injected mutation);
//   * `sepe-run corpus DIR` runs every `.btor2` file under DIR
//     (HWMCC-style corpora, the paper's §6.2 interchange format), one
//     job per bad property — malformed files become per-job parse-error
//     rows, not campaign aborts.
//
// Either way the jobs fan out over a worker pool (each job racing BMC
// against k-induction), and per-job stats plus an optional JSON report
// come back. Verdicts are deterministic for a fixed spec whatever
// --threads says, as long as budgets are deterministic: --conflicts
// qualifies, --time-cap does not (a wall cap can fire earlier under
// core contention) — see src/engine/campaign.hpp.
//
// Campaigns scale out across processes/hosts: --shard I/N runs the
// deterministic shard I of N (see src/engine/shard.hpp), the merge
// subcommand folds the N shard reports back into one report whose
// stable JSON is byte-identical to an unsharded run, and the dispatch
// subcommand schedules all N shards onto a fleet of worker processes
// (src/engine/dispatch.hpp: checkpoint-journal retries, straggler
// stealing, live aggregation) and merges for you.
//
// Examples:
//   sepe-run --bugs table1 --rows 8 --threads 4
//   sepe-run --bugs xor_as_or,add_wrong --modes edsep --json report.json
//   sepe-run --healthy --max-k 6 --bound 6
//   sepe-run --bugs table1 --shard 2/4 --stable-json --json shard2.json
//   sepe-run corpus tests/corpus --bound 6 --max-k 2 --stable-json --json -
//   sepe-run dispatch --workers 4 --bugs table1 --rows 8 --json merged.json
//   sepe-run dispatch --workers 2 corpus tests/corpus --json -
//   sepe-run merge --output merged.json shard0.json shard1.json ...
//
// Exit codes: 0 success; 1 I/O, merge-input, or dispatch failure;
// 2 usage error; 3 campaign finished with UNKNOWN verdicts (including
// parse-error rows). The full CLI contract lives in docs/CLI.md.
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "engine/campaign.hpp"
#include "engine/dispatch.hpp"
#include "engine/pinned_table.hpp"
#include "engine/report_io.hpp"
#include "engine/shard.hpp"
#include "engine/witness.hpp"
#include "engine/workload.hpp"
#include "proc/mutations.hpp"
#include "sat/dimacs_backend.hpp"
#include "util/fault.hpp"
#include "util/parse.hpp"
#include "util/stopwatch.hpp"

using namespace sepe;
using isa::Opcode;

namespace {

/// Crash-only envelope (docs/ROBUSTNESS.md): SIGTERM/SIGINT raise the
/// cooperative stop flag every CDCL loop polls; the campaign winds down,
/// flushes its checkpoint journal and a partial report, and main exits
/// 128+signal (143 / 130). Only async-signal-safe work happens here.
volatile std::sig_atomic_t g_signal = 0;

void handle_terminate_signal(int sig) {
  g_signal = sig;
  fault::request_global_stop();
}

/// Fold an interrupt into the exit status: a run stopped by a signal (or
/// by an injected `stop` fault, which behaves like SIGTERM) reports
/// 128+signal however far it got, so wrappers can tell "finished with
/// UNKNOWNs" (3) from "was told to stop" (130/143).
int exit_code(int code) {
  const int sig =
      g_signal != 0 ? g_signal : (fault::global_stop_requested() ? SIGTERM : 0);
  return sig != 0 ? 128 + sig : code;
}

void usage() {
  std::printf(
      "sepe-run — parallel SEPE-SQED verification campaigns\n"
      "\n"
      "usage: sepe-run [options]                 QED workload (matrix expansion)\n"
      "       sepe-run corpus DIR [options]      BTOR2 corpus workload\n"
      "       sepe-run dispatch [options] [workload args...]\n"
      "       sepe-run merge [--output FILE] SHARD.json...\n"
      "       sepe-run check-witness FILE...\n"
      "\n"
      "common options (both workload families):\n"
      "  --threads N      worker threads (default: hardware concurrency)\n"
      "  --bound N        BMC bound sweep limit (default 10)\n"
      "  --max-k N        k-induction depth limit (default 10)\n"
      "  --no-race        disable the k-induction prover (BMC only)\n"
      "  --portfolio N    race N differently-configured CDCL instances per\n"
      "                   prover inside each job (default 1; verdicts stay\n"
      "                   deterministic — see src/engine/campaign.hpp)\n"
      "  --encoding E     bit-blasting encoding: auto | tseitin | pg\n"
      "                   (default auto = the workload family's default:\n"
      "                   Tseitin for QED, Plaisted-Greenbaum for corpus)\n"
      "  --backend B      SAT engine: native | dimacs (default native; dimacs\n"
      "                   runs an external solver found via SEPE_EXTERNAL_SOLVER\n"
      "                   or kissat/cadical on PATH — see docs/SOLVER.md)\n"
      "  --conflicts N    per-solver-call conflict budget (default none;\n"
      "                   deterministic, unlike --time-cap)\n"
      "  --time-cap SEC   per-job wall-clock cap (default none; verdicts under\n"
      "                   a wall cap may vary with load and --threads)\n"
      "  --memory-mb N    per-job SAT-arena memory ceiling in MiB (default none;\n"
      "                   deterministic — an over-budget job degrades to an\n"
      "                   UNKNOWN row diagnosed 'resource: memory')\n"
      "  --share-clauses on|off|N\n"
      "                   learnt-clause sharing between portfolio entrants and\n"
      "                   across jobs (cone-digest vault); N = LBD export cap\n"
      "                   (on = 8, default off). Verdicts and stable JSON are\n"
      "                   sharing-invariant; auto-disabled under --conflicts\n"
      "                   and --memory-mb (see docs/SOLVER.md)\n"
      "  --seed S         RNG seed recorded in the report (default 1)\n"
      "  --shard I/N      run only the deterministic shard I of N (0-based);\n"
      "                   the JSON report then carries shard metadata for merge\n"
      "  --checkpoint F   journal finished jobs to F and resume from it\n"
      "  --cache DIR      reuse verdicts journaled under DIR (verdicts.jsonl)\n"
      "                   across runs, shards, and campaigns; stable JSON is\n"
      "                   byte-identical warm or cold (see docs/FORMATS.md);\n"
      "                   wall-capped jobs (--time-cap) are never cached\n"
      "  --json FILE      write a JSON report ('-' = stdout)\n"
      "  --stable-json    JSON omits timing/race fields (byte-deterministic)\n"
      "  --witness        print the counterexample trace of falsified jobs\n"
      "  --witness-dir D  write one standalone witness artifact per falsified\n"
      "                   job into D (*.witness, see docs/FORMATS.md) — each\n"
      "                   re-validatable later with check-witness\n"
      "  --no-witness-check\n"
      "                   skip the witness post-pass. By default every\n"
      "                   FALSIFIED verdict is replayed (and delta-debugged)\n"
      "                   on the concrete simulator, independent of the SAT\n"
      "                   stack; a trace that does not replay demotes its row\n"
      "                   to UNKNOWN ('witness: replay mismatch'). Stable JSON\n"
      "                   is byte-identical either way\n"
      "\n"
      "QED workload options:\n"
      "  --xlen W         DUV datapath width (default 4)\n"
      "  --modes M        eddi | edsep | both (default both)\n"
      "  --bugs LIST      comma-separated bug names, or: table1 | fig4 | all\n"
      "                   (default table1)\n"
      "  --rows N         only the first N instruction classes of the catalog\n"
      "  --healthy        verify the unmutated DUV instead of injecting bugs\n"
      "  --list-bugs      list the injectable bug catalog and exit\n"
      "\n"
      "corpus: every .btor2 file under DIR, one job per bad property\n"
      "(multi-property files fan out; malformed files become UNKNOWN rows\n"
      "with the parse diagnostic instead of aborting the campaign).\n"
      "\n"
      "dispatch: shard the campaign across worker processes spawned by this\n"
      "one, retry crashed shards from their checkpoint journals, re-issue\n"
      "stragglers to idle workers (first completion wins), and merge — the\n"
      "merged stable JSON is byte-identical to an unsharded run. Every flag\n"
      "not listed below (and an optional leading 'corpus DIR') is forwarded\n"
      "to the workers verbatim; --threads defaults to 1 per worker, and\n"
      "--shard/--checkpoint are owned by the dispatcher and rejected.\n"
      "  --workers N      concurrent worker processes (default 2)\n"
      "  --shards M       shard count (default: the worker count)\n"
      "  --retries R      re-launches per shard after a failure (default 1)\n"
      "  --no-steal       never re-issue straggler shards to idle workers\n"
      "  --steal-after S  seconds a shard must run before an idle worker\n"
      "                   may steal it (default 1)\n"
      "  --work-dir D     keep per-attempt journals and reports in D\n"
      "                   (default: a temp directory, removed on success)\n"
      "  --witness-dir D  forwarded to the workers (they write the artifacts)\n"
      "                   and additionally audited after the merge: every\n"
      "                   FALSIFIED row — retried and stolen shards included —\n"
      "                   must be backed by a valid artifact in D matching its\n"
      "                   name, bound, and bad label, or the row is demoted to\n"
      "                   UNKNOWN ('witness: replay mismatch'); the audit runs\n"
      "                   on the simulator alone (no SAT stack)\n"
      "  --json FILE      merged report destination ('-' = stdout; always\n"
      "                   stable JSON, like merge)\n"
      "\n"
      "merge: read N shard reports (any order), check they are disjoint and\n"
      "complete, and write the merged report as stable JSON — byte-identical\n"
      "to an unsharded --stable-json run of the same campaign.\n"
      "  --output FILE    merged report destination (default '-' = stdout)\n"
      "\n"
      "check-witness: re-validate standalone witness artifacts (--witness-dir\n"
      "output) from their bytes alone — self-check digest, embedded model,\n"
      "and a full replay on the concrete simulator; the SAT stack is never\n"
      "loaded. Exit 0 when every file is valid, 1 when any is rejected (each\n"
      "rejection is diagnosed on stderr), 2 on usage errors.\n"
      "\n"
      "exit codes: 0 success; 1 I/O, merge, or dispatch failure; 2 usage\n"
      "error; 3 the campaign finished with UNKNOWN verdicts; 130/143 the\n"
      "run was interrupted (SIGINT/SIGTERM) after flushing its checkpoint\n"
      "journal and a partial report — resume with the same --checkpoint.\n"
      "Fault injection (SEPE_FAULT) and the failure-mode matrix are\n"
      "documented in docs/ROBUSTNESS.md.\n");
}

void list_bugs() {
  std::printf("single-instruction bugs (Table 1):\n");
  for (const proc::Mutation& m : proc::table1_single_instruction_bugs())
    std::printf("  %-28s %s\n", m.name.c_str(), m.description.c_str());
  std::printf("multiple-instruction bugs (Figure 4):\n");
  for (const proc::Mutation& m : proc::figure4_multi_instruction_bugs(true))
    std::printf("  %-28s %s\n", m.name.c_str(), m.description.c_str());
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string piece = s.substr(start, comma - start);
    if (!piece.empty()) out.push_back(piece);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

// --- strict option-value parsing: malformed values are usage errors
// --- (exit 2) with a diagnostic, never silently-zero atoi results ---

[[noreturn]] void die_usage(const char* flag, const char* expected, const char* got) {
  std::fprintf(stderr, "sepe-run: %s expects %s, got '%s' — try --help\n", flag,
               expected, got);
  std::exit(2);
}

std::uint64_t parse_u64_arg(const char* flag, const char* text) {
  const auto value = parse_u64_strict(text);
  if (!value) die_usage(flag, "an unsigned integer", text);
  return *value;
}

unsigned parse_unsigned_arg(const char* flag, const char* text, unsigned min_value,
                            unsigned max_value = ~0u) {
  const std::uint64_t value = parse_u64_arg(flag, text);
  if (value < min_value || value > max_value) {
    char expected[64];
    std::snprintf(expected, sizeof expected, "an integer in [%u, %u]", min_value,
                  max_value);
    die_usage(flag, expected, text);
  }
  return static_cast<unsigned>(value);
}

double parse_seconds_arg(const char* flag, const char* text) {
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (errno != 0 || end == text || *end != '\0' || !std::isfinite(value) ||
      value < 0.0)
    die_usage(flag, "a non-negative number of seconds", text);
  return value;
}

/// Options shared by every workload family's campaign run.
struct CommonOptions {
  unsigned threads = 0;
  unsigned bound = 10;
  unsigned max_k = 10;
  unsigned portfolio = 1;
  bool race = true;
  bool stable_json = false;
  bool print_witness = false;
  std::uint64_t conflicts = 0;
  std::uint64_t seed = 1;
  double time_cap = 0.0;
  unsigned memory_mb = 0;
  unsigned share_clauses = 0;
  bool witness_check = true;
  std::string witness_dir;
  std::string json_path;
  std::string checkpoint_path;
  std::string cache_dir;
  std::optional<engine::ShardSpec> shard;
  std::optional<bool> plaisted_greenbaum;  // nullopt = workload default
  sat::BackendKind backend = sat::BackendKind::Native;

  engine::JobBudget budget() const {
    engine::JobBudget b;
    b.max_bound = bound;
    b.max_k = max_k;
    b.race_k_induction = race;
    b.conflict_budget = conflicts;
    b.max_seconds = time_cap;
    b.memory_limit_mb = memory_mb;
    b.share_clauses = share_clauses;
    b.portfolio = portfolio;
    b.plaisted_greenbaum = plaisted_greenbaum;
    b.backend = backend;
    return b;
  }
};

/// Consume argv[i] (advancing i past a value argument) when it is one of
/// the family-independent campaign flags. Malformed values exit 2.
bool parse_common_flag(int& i, int argc, char** argv, CommonOptions* o) {
  const auto next = [&](const char* flag) -> const char* {
    if (i + 1 >= argc) {
      std::fprintf(stderr, "sepe-run: %s needs a value — try --help\n", flag);
      std::exit(2);
    }
    return argv[++i];
  };
  if (!std::strcmp(argv[i], "--threads"))
    o->threads = parse_unsigned_arg("--threads", next("--threads"), 1);
  else if (!std::strcmp(argv[i], "--bound"))
    o->bound = parse_unsigned_arg("--bound", next("--bound"), 0);
  else if (!std::strcmp(argv[i], "--max-k"))
    o->max_k = parse_unsigned_arg("--max-k", next("--max-k"), 0);
  else if (!std::strcmp(argv[i], "--no-race"))
    o->race = false;
  else if (!std::strcmp(argv[i], "--portfolio"))
    o->portfolio = parse_unsigned_arg("--portfolio", next("--portfolio"), 1, 16);
  else if (!std::strcmp(argv[i], "--encoding")) {
    const char* value = next("--encoding");
    if (!std::strcmp(value, "auto"))
      o->plaisted_greenbaum.reset();
    else if (!std::strcmp(value, "tseitin"))
      o->plaisted_greenbaum = false;
    else if (!std::strcmp(value, "pg"))
      o->plaisted_greenbaum = true;
    else
      die_usage("--encoding", "auto | tseitin | pg", value);
  } else if (!std::strcmp(argv[i], "--backend")) {
    const char* value = next("--backend");
    const auto kind = sat::backend_kind_from_name(value);
    if (!kind) die_usage("--backend", "native | dimacs", value);
    if (*kind == sat::BackendKind::Dimacs) {
      // Fail the run up front with a diagnostic rather than letting every
      // job report an unavailable engine as an UNKNOWN verdict.
      const sat::DimacsBackend probe;
      if (!probe.available()) {
        std::fprintf(stderr,
                     "sepe-run: --backend dimacs: no external solver found — "
                     "set SEPE_EXTERNAL_SOLVER or put kissat/cadical on PATH\n");
        std::exit(1);
      }
    }
    o->backend = *kind;
  } else if (!std::strcmp(argv[i], "--conflicts"))
    o->conflicts = parse_u64_arg("--conflicts", next("--conflicts"));
  else if (!std::strcmp(argv[i], "--time-cap"))
    o->time_cap = parse_seconds_arg("--time-cap", next("--time-cap"));
  else if (!std::strcmp(argv[i], "--memory-mb"))
    o->memory_mb = parse_unsigned_arg("--memory-mb", next("--memory-mb"), 1);
  else if (!std::strcmp(argv[i], "--share-clauses")) {
    const char* v = next("--share-clauses");
    if (!std::strcmp(v, "off"))
      o->share_clauses = 0;
    else if (!std::strcmp(v, "on"))
      o->share_clauses = 8;
    else
      o->share_clauses = parse_unsigned_arg("--share-clauses", v, 1);
  }
  else if (!std::strcmp(argv[i], "--seed"))
    o->seed = parse_u64_arg("--seed", next("--seed"));
  else if (!std::strcmp(argv[i], "--shard")) {
    engine::ShardSpec parsed;
    std::string shard_error;
    if (!engine::parse_shard(next("--shard"), &parsed, &shard_error)) {
      std::fprintf(stderr, "sepe-run: %s — try --help\n", shard_error.c_str());
      std::exit(2);
    }
    o->shard = parsed;
  } else if (!std::strcmp(argv[i], "--checkpoint"))
    o->checkpoint_path = next("--checkpoint");
  else if (!std::strcmp(argv[i], "--cache"))
    o->cache_dir = next("--cache");
  else if (!std::strcmp(argv[i], "--json"))
    o->json_path = next("--json");
  else if (!std::strcmp(argv[i], "--stable-json"))
    o->stable_json = true;
  else if (!std::strcmp(argv[i], "--witness"))
    o->print_witness = true;
  else if (!std::strcmp(argv[i], "--witness-dir"))
    o->witness_dir = next("--witness-dir");
  else if (!std::strcmp(argv[i], "--no-witness-check"))
    o->witness_check = false;
  else
    return false;
  return true;
}

/// Run the expanded spec (sharded/checkpointed as requested) and emit
/// the table + optional JSON report. Shared campaign epilogue of both
/// workload families.
int run_and_report(const engine::CampaignSpec& spec, const CommonOptions& common,
                   const std::string& fingerprint) {
  engine::ShardRunOptions options;
  options.pool.threads = common.threads;
  options.pool.witness.check = common.witness_check;
  if (!common.witness_dir.empty()) {
    if (!common.witness_check) {
      // Artifacts are the post-pass's output; without it the directory
      // would stay silently empty and a later check-witness audit would
      // demote every row.
      std::fprintf(stderr, "sepe-run: --witness-dir needs the witness post-pass "
                           "(drop --no-witness-check) — try --help\n");
      return 2;
    }
    std::error_code ec;
    std::filesystem::create_directories(common.witness_dir, ec);
    if (ec) {
      std::fprintf(stderr, "sepe-run: cannot create witness directory '%s': %s\n",
                   common.witness_dir.c_str(), ec.message().c_str());
      return exit_code(1);
    }
    options.pool.witness.artifact_dir = common.witness_dir;
  }
  options.shard = common.shard;
  options.checkpoint_path = common.checkpoint_path;
  options.cache_dir = common.cache_dir;
  // Campaign parameters the JobSpecs cannot expose (they shape the model
  // builders): folded into the checkpoint digest so a resume under
  // different flags is refused instead of reusing stale verdicts.
  options.fingerprint = fingerprint;
  std::string run_error;
  engine::CampaignReport report = engine::run_sharded(spec, options, &run_error);
  if (!run_error.empty()) {
    std::fprintf(stderr, "sepe-run: %s\n", run_error.c_str());
    return exit_code(1);
  }

  // Interrupted (SIGTERM/SIGINT or an injected stop fault): the rows of
  // jobs this run never claimed carry no information — drop them so the
  // partial report holds exactly the solved/journaled jobs, then exit
  // 128+signal below. Finished jobs are already in the checkpoint; the
  // resumed run completes the campaign byte-identically.
  const bool interrupted = fault::global_stop_requested();
  if (interrupted) {
    std::vector<engine::JobResult> kept;
    for (engine::JobResult& j : report.jobs)
      if (!j.name.empty()) kept.push_back(std::move(j));
    report.jobs = std::move(kept);
  }

  std::printf("%s", report.to_table().c_str());
  if (common.print_witness) {
    for (const engine::JobResult& j : report.jobs)
      if (j.verdict == engine::Verdict::Falsified && !j.witness.empty())
        std::printf("\n[%s]\n%s", j.name.c_str(), j.witness.c_str());
  }

  if (!common.json_path.empty()) {
    const std::string json = report.to_json(/*include_timing=*/!common.stable_json);
    if (common.json_path == "-") {
      std::printf("\n%s", json.c_str());
    } else {
      if (!engine::write_text_file_atomic(common.json_path, json, "report.write")) {
        std::fprintf(stderr, "sepe-run: cannot write '%s'\n",
                     common.json_path.c_str());
        return exit_code(1);
      }
      std::printf("\n%s report written to %s\n",
                  interrupted ? "partial JSON" : "JSON", common.json_path.c_str());
    }
  }
  if (interrupted)
    std::fprintf(stderr,
                 "sepe-run: interrupted — %zu job(s) journaled; re-run with the "
                 "same flags%s to resume\n",
                 report.jobs.size(),
                 common.checkpoint_path.empty() ? " (add --checkpoint to make "
                                                  "interrupts resumable)"
                                                : " and --checkpoint");

  // Exit status: 0 when every job reached a definite or clean verdict
  // (and 128+signal when the run was told to stop).
  return exit_code(report.count(engine::Verdict::Unknown) == 0 ? 0 : 3);
}

/// `sepe-run merge [--output FILE] SHARD.json...` — fan the shard
/// reports back in. Diagnostics go to stderr so `--output -` pipes
/// clean JSON.
int run_merge(int argc, char** argv) {
  std::string out_path = "-";
  std::vector<std::string> inputs;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--output")) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sepe-run: --output needs a value — try --help\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage();
      return 0;
    } else if (argv[i][0] == '-') {
      // '-' is stdout for --output but not a supported input source.
      std::fprintf(stderr, "sepe-run: merge inputs must be shard report files, "
                           "got '%s' — try --help\n",
                   argv[i]);
      return 2;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) {
    std::fprintf(stderr, "sepe-run: merge needs at least one shard report — "
                         "try --help\n");
    return 2;
  }

  std::vector<engine::CampaignReport> shards;
  shards.reserve(inputs.size());
  for (const std::string& path : inputs) {
    const auto text = engine::read_text_file(path);
    if (!text) {
      std::fprintf(stderr, "sepe-run: cannot read '%s'\n", path.c_str());
      return 1;
    }
    engine::CampaignReport report;
    std::string parse_error;
    if (!engine::parse_report(*text, &report, &parse_error)) {
      std::fprintf(stderr, "sepe-run: '%s' is not a campaign report: %s\n",
                   path.c_str(), parse_error.c_str());
      return 1;
    }
    shards.push_back(std::move(report));
  }

  std::string merge_error;
  const auto merged = engine::CampaignReport::merge(shards, &merge_error);
  if (!merged) {
    std::fprintf(stderr, "sepe-run: merge failed: %s\n", merge_error.c_str());
    return 1;
  }

  const std::string json = merged->to_json(/*include_timing=*/false);
  if (out_path == "-") {
    std::printf("%s", json.c_str());
  } else {
    if (!engine::write_text_file_atomic(out_path, json, "report.write")) {
      std::fprintf(stderr, "sepe-run: cannot write '%s'\n", out_path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "merged %zu shards -> %zu jobs: %u falsified, %u proved, "
               "%u bound-clean, %u unknown\n",
               shards.size(), merged->jobs.size(),
               merged->count(engine::Verdict::Falsified),
               merged->count(engine::Verdict::Proved),
               merged->count(engine::Verdict::BoundClean),
               merged->count(engine::Verdict::Unknown));
  return merged->count(engine::Verdict::Unknown) == 0 ? 0 : 3;
}

/// `sepe-run check-witness FILE...` — re-validate standalone witness
/// artifacts with the concrete simulator alone. The SAT stack is never
/// loaded: this is the independent audit path for artifacts produced by
/// --witness-dir, wherever (and by whichever binary) they were written.
int run_check_witness(int argc, char** argv) {
  std::vector<std::string> files;
  for (int i = 2; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage();
      return 0;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "sepe-run: check-witness takes artifact files, got '%s' — "
                   "try --help\n",
                   argv[i]);
      return 2;
    }
    files.push_back(argv[i]);
  }
  if (files.empty()) {
    std::fprintf(stderr,
                 "sepe-run: check-witness needs at least one artifact file — "
                 "try --help\n");
    return 2;
  }

  unsigned rejected = 0;
  for (const std::string& path : files) {
    const auto text = engine::read_text_file(path);
    if (!text) {
      std::fprintf(stderr, "sepe-run: cannot read '%s'\n", path.c_str());
      ++rejected;
      continue;
    }
    engine::WitnessHeader header;
    std::string why;
    if (!engine::check_witness_text(*text, &header, &why)) {
      std::fprintf(stderr, "sepe-run: '%s' REJECTED: %s\n", path.c_str(),
                   why.c_str());
      ++rejected;
      continue;
    }
    std::printf("%s: valid witness for job '%s' (%s): bad '%s' fires at bound "
                "%u, effective stimulus %u step(s)\n",
                path.c_str(), header.name.c_str(),
                header.mode.empty() ? header.family.c_str() : header.mode.c_str(),
                header.bad_label.c_str(), header.length, header.shrunk);
  }
  if (rejected > 0)
    std::fprintf(stderr, "sepe-run: %u of %zu artifact(s) rejected\n", rejected,
                 files.size());
  return rejected == 0 ? 0 : 1;
}

/// The absolute path of this binary, for spawning workers that survive
/// a changed working directory. /proc/self/exe is authoritative on
/// Linux; argv[0] is the portable fallback.
std::string self_exe_path(const char* argv0) {
  std::error_code ec;
  const std::filesystem::path exe = std::filesystem::read_symlink("/proc/self/exe", ec);
  if (!ec) return exe.string();
  return argv0;
}

/// `sepe-run dispatch [dispatch flags] [workload args...]` — shard the
/// campaign over a fleet of worker processes (each one a `sepe-run
/// --shard I/M` child), with checkpoint-journal retries and straggler
/// stealing; print and optionally write the merged report.
int run_dispatch_cli(int argc, char** argv) {
  engine::DispatchOptions options;
  std::string json_path;
  std::string work_dir_flag;
  std::string witness_dir;
  std::vector<std::string> forwarded;
  bool forwards_threads = false;
  bool forwards_no_witness_check = false;
  for (int i = 2; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sepe-run: %s needs a value — try --help\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--workers"))
      options.workers = parse_unsigned_arg("--workers", next("--workers"), 1, 256);
    else if (!std::strcmp(argv[i], "--shards"))
      options.shards = parse_unsigned_arg("--shards", next("--shards"), 1, 4096);
    else if (!std::strcmp(argv[i], "--retries"))
      options.retries = parse_unsigned_arg("--retries", next("--retries"), 0, 1000);
    else if (!std::strcmp(argv[i], "--no-steal"))
      options.steal = false;
    else if (!std::strcmp(argv[i], "--steal-after"))
      options.steal_after_seconds =
          parse_seconds_arg("--steal-after", next("--steal-after"));
    else if (!std::strcmp(argv[i], "--work-dir"))
      work_dir_flag = next("--work-dir");
    else if (!std::strcmp(argv[i], "--witness-dir")) {
      // Shared between the fleet and the dispatcher: the workers write
      // the artifacts (the flag is forwarded below), the dispatcher
      // audits every merged FALSIFIED row against them.
      witness_dir = next("--witness-dir");
    } else if (!std::strcmp(argv[i], "--json"))
      json_path = next("--json");
    else if (!std::strcmp(argv[i], "--stable-json")) {
      // The merged report is always stable JSON (like merge); accepted
      // so dispatch invocations read like their single-process twins.
    } else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage();
      return 0;
    } else if (!std::strcmp(argv[i], "--shard") ||
               !std::strcmp(argv[i], "--checkpoint")) {
      std::fprintf(stderr,
                   "sepe-run: %s is owned by the dispatcher (it plans the shards "
                   "and journals every attempt) — try --help\n",
                   argv[i]);
      return 2;
    } else {
      if (!std::strcmp(argv[i], "--threads")) forwards_threads = true;
      if (!std::strcmp(argv[i], "--no-witness-check"))
        forwards_no_witness_check = true;
      forwarded.push_back(argv[i]);
    }
  }

  options.worker_command.push_back(self_exe_path(argv[0]));
  options.worker_command.insert(options.worker_command.end(), forwarded.begin(),
                                forwarded.end());
  if (!forwards_threads) {
    // The process fleet is the parallelism; workers solve single-threaded
    // unless the caller explicitly sizes them.
    options.worker_command.push_back("--threads");
    options.worker_command.push_back("1");
  }
  if (!witness_dir.empty()) {
    if (forwards_no_witness_check) {
      // The workers would write no artifacts, so the post-merge audit
      // would demote every falsified row. Refuse the contradiction (the
      // single-process run_and_report path does the same).
      std::fprintf(stderr, "sepe-run: --witness-dir needs the witness post-pass "
                           "(drop --no-witness-check) — try --help\n");
      return 2;
    }
    std::error_code dir_ec;
    std::filesystem::create_directories(witness_dir, dir_ec);
    if (dir_ec) {
      std::fprintf(stderr, "sepe-run: cannot create witness directory '%s': %s\n",
                   witness_dir.c_str(), dir_ec.message().c_str());
      return 1;
    }
    options.worker_command.push_back("--witness-dir");
    options.worker_command.push_back(witness_dir);
    options.witness_dir = witness_dir;
  }

  const bool auto_work_dir = work_dir_flag.empty();
  std::error_code ec;
  const std::filesystem::path work_dir =
      auto_work_dir ? std::filesystem::temp_directory_path(ec) /
                          ("sepe-dispatch." + std::to_string(::getpid()))
                    : std::filesystem::path(work_dir_flag);
  std::filesystem::create_directories(work_dir, ec);
  if (ec) {
    std::fprintf(stderr, "sepe-run: cannot create work directory '%s': %s\n",
                 work_dir.string().c_str(), ec.message().c_str());
    return 1;
  }
  options.work_dir = work_dir.string();
  options.on_event = [](const std::string& line) {
    std::fprintf(stderr, "[dispatch] %s\n", line.c_str());
  };

  const engine::DispatchResult result = engine::run_dispatch(options);
  if (!result.ok) {
    std::fprintf(stderr, "sepe-run: dispatch failed: %s\n", result.error.c_str());
    // Keep the journals of a failed dispatch — they are the resume and
    // the post-mortem material.
    std::fprintf(stderr, "sepe-run: worker journals kept in %s\n",
                 options.work_dir.c_str());
    return exit_code(1);
  }
  std::fprintf(stderr,
               "[dispatch] done: %u worker launches, %u failed attempts, %u "
               "steals, %u duplicate completions discarded\n",
               result.launches, result.failures, result.steals, result.duplicates);

  std::printf("%s", result.merged.to_table().c_str());
  if (!json_path.empty()) {
    const std::string json = result.merged.to_json(/*include_timing=*/false);
    if (json_path == "-") {
      std::printf("\n%s", json.c_str());
    } else if (!engine::write_text_file_atomic(json_path, json, "report.write")) {
      std::fprintf(stderr, "sepe-run: cannot write '%s'\n", json_path.c_str());
      // The campaign itself succeeded; keep the journals so rerunning
      // with --work-dir can re-merge without re-solving anything.
      std::fprintf(stderr, "sepe-run: worker journals kept in %s\n",
                   options.work_dir.c_str());
      return 1;
    } else {
      std::printf("\nJSON report written to %s\n", json_path.c_str());
    }
  }
  if (auto_work_dir) std::filesystem::remove_all(work_dir, ec);
  return exit_code(result.merged.count(engine::Verdict::Unknown) == 0 ? 0 : 3);
}

/// `sepe-run corpus DIR [options]` — the BTOR2 corpus workload family.
int run_corpus(int argc, char** argv) {
  CommonOptions common;
  std::string directory;
  for (int i = 2; i < argc; ++i) {
    if (parse_common_flag(i, argc, argv, &common)) continue;
    if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage();
      return 0;
    }
    if (argv[i][0] == '-') {
      std::fprintf(stderr, "sepe-run: unknown corpus flag '%s' — try --help\n",
                   argv[i]);
      return 2;
    }
    if (!directory.empty()) {
      std::fprintf(stderr, "sepe-run: corpus takes one directory, got '%s' and "
                           "'%s' — try --help\n",
                   directory.c_str(), argv[i]);
      return 2;
    }
    directory = argv[i];
  }
  if (directory.empty()) {
    std::fprintf(stderr, "sepe-run: corpus needs a directory — try --help\n");
    return 2;
  }

  const engine::Btor2CorpusSource source(directory, common.budget());
  std::string expand_error;
  const auto spec = engine::expand_source(source, common.seed, &expand_error);
  if (!spec) {
    std::fprintf(stderr, "sepe-run: %s\n", expand_error.c_str());
    return 1;
  }

  std::printf("corpus campaign: %zu jobs from '%s', bound=%u, max-k=%u%s\n",
              spec->jobs.size(), directory.c_str(), common.bound, common.max_k,
              common.race ? "" : ", race disabled");
  if (common.shard)
    std::printf("shard %u/%u of the expanded job list\n", common.shard->index,
                common.shard->count);
  std::printf("\n");

  // Budgets and per-file content hashes are covered by the spec digest
  // already; the fingerprint pins the family.
  return run_and_report(*spec, common, "workload=btor2");
}

}  // namespace

int main(int argc, char** argv) {
  // Crash-only envelope first: every subcommand (and every dispatched
  // worker child, which re-enters main) stops cooperatively on
  // SIGTERM/SIGINT and exits 128+signal after flushing its journals.
  std::signal(SIGTERM, handle_terminate_signal);
  std::signal(SIGINT, handle_terminate_signal);
  // Arm SEPE_FAULT (plus the legacy SEPE_RUN_KILL_TOKEN/HANG_TOKEN
  // aliases) before any work happens; see docs/ROBUSTNESS.md.
  fault::init_from_environment();

  if (argc > 1 && !std::strcmp(argv[1], "merge")) return run_merge(argc, argv);
  if (argc > 1 && !std::strcmp(argv[1], "corpus")) return run_corpus(argc, argv);
  if (argc > 1 && !std::strcmp(argv[1], "dispatch")) return run_dispatch_cli(argc, argv);
  if (argc > 1 && !std::strcmp(argv[1], "check-witness"))
    return run_check_witness(argc, argv);

  CommonOptions common;
  unsigned xlen = 4, rows = ~0u;
  bool healthy = false;
  std::string modes_arg = "both", bugs_arg = "table1";

  for (int i = 1; i < argc; ++i) {
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "sepe-run: %s needs a value — try --help\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (parse_common_flag(i, argc, argv, &common)) continue;
    if (!std::strcmp(argv[i], "--xlen"))
      xlen = parse_unsigned_arg("--xlen", next("--xlen"), 2, 32);
    else if (!std::strcmp(argv[i], "--modes")) modes_arg = next("--modes");
    else if (!std::strcmp(argv[i], "--bugs")) bugs_arg = next("--bugs");
    else if (!std::strcmp(argv[i], "--rows"))
      rows = parse_unsigned_arg("--rows", next("--rows"), 1);
    else if (!std::strcmp(argv[i], "--healthy")) healthy = true;
    else if (!std::strcmp(argv[i], "--list-bugs")) { list_bugs(); return 0; }
    else if (!std::strcmp(argv[i], "--help") || !std::strcmp(argv[i], "-h")) {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "sepe-run: unknown flag '%s' — try --help\n", argv[i]);
      return 2;
    }
  }

  engine::CampaignMatrix matrix;
  matrix.xlen = xlen;
  matrix.budget = common.budget();

  if (modes_arg == "eddi") {
    matrix.modes = {qed::QedMode::EddiV};
  } else if (modes_arg == "edsep") {
    matrix.modes = {qed::QedMode::EdsepV};
  } else if (modes_arg == "both") {
    matrix.modes = {qed::QedMode::EddiV, qed::QedMode::EdsepV};
  } else {
    std::fprintf(stderr, "sepe-run: unknown --modes '%s' (eddi|edsep|both) — "
                         "try --help\n",
                 modes_arg.c_str());
    return 2;
  }

  // Resolve the mutation list.
  const auto table1 = proc::table1_single_instruction_bugs();
  const auto fig4 = proc::figure4_multi_instruction_bugs(/*with_memory=*/true);
  if (!healthy) {
    std::vector<proc::Mutation> selected;
    if (bugs_arg == "table1") {
      selected = table1;
    } else if (bugs_arg == "fig4") {
      selected = fig4;
    } else if (bugs_arg == "all") {
      selected = table1;
      selected.insert(selected.end(), fig4.begin(), fig4.end());
    } else {
      for (const std::string& name : split_csv(bugs_arg)) {
        bool found = false;
        for (const auto* catalog : {&table1, &fig4}) {
          for (const proc::Mutation& m : *catalog)
            if (m.name == name) {
              selected.push_back(m);
              found = true;
            }
        }
        if (!found) {
          std::fprintf(stderr, "sepe-run: unknown bug '%s' — try --list-bugs\n",
                       name.c_str());
          return 2;
        }
        // Job names double as the stable shard/merge ids, so a bug may
        // be requested only once.
        for (std::size_t a = 0; a + 1 < selected.size(); ++a)
          if (selected[a].name == selected.back().name) {
            std::fprintf(stderr, "sepe-run: duplicate bug '%s' in --bugs — "
                                 "try --help\n",
                         name.c_str());
            return 2;
          }
      }
    }
    if (rows < selected.size()) selected.resize(rows);
    if (selected.empty()) {
      std::fprintf(stderr, "sepe-run: no bugs selected (use --healthy for an "
                           "unmutated DUV) — try --help\n");
      return 2;
    }
    matrix.mutations = std::move(selected);
  }

  // Figure-4 interaction bugs need a producer/consumer instruction mix in
  // the DUV; the campaign derives the rest (target + replay opcodes).
  matrix.extra_opcodes = {Opcode::ADD, Opcode::ADDI};

  const bool needs_table = modes_arg != "eddi";
  std::unique_ptr<engine::PinnedTable> pinned;
  if (needs_table) {
    std::printf("synthesizing the pinned equivalence table (xlen=%u)...\n", xlen);
    Stopwatch synth_clock;
    pinned = engine::make_pinned_table(xlen);
    std::printf("table ready: %zu instructions, %.2fs\n\n", pinned->table.size(),
                synth_clock.seconds());
    matrix.equivalences = &pinned->table;
  }

  const engine::CampaignSpec spec = engine::expand(matrix, common.seed);
  std::printf("campaign: %zu jobs (%zu instruction classes × %zu modes), "
              "bound=%u, max-k=%u%s\n",
              spec.jobs.size(),
              matrix.mutations.empty() ? 1 : matrix.mutations.size(),
              matrix.modes.size(), common.bound, common.max_k,
              common.race ? "" : ", race disabled");
  if (common.shard)
    std::printf("shard %u/%u of the expanded job list\n", common.shard->index,
                common.shard->count);
  std::printf("\n");

  return run_and_report(spec, common,
                        "xlen=" + std::to_string(xlen) + ";modes=" + modes_arg);
}
