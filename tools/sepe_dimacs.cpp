// sepe_dimacs.cpp — DIMACS CNF frontend over the native CDCL solver.
//
// Speaks the standard SAT-competition protocol: reads a `p cnf` file
// (or stdin), prints "s SATISFIABLE" / "s UNSATISFIABLE" with "v" model
// lines, and exits 10 / 20 accordingly (0 on unknown, 1 on input
// errors). That makes the binary a drop-in SEPE_EXTERNAL_SOLVER target,
// so the DIMACS subprocess backend and its equivalence tests run even on
// hosts without kissat or cadical — the backend_test battery points the
// subprocess bridge at this binary and cross-checks it against the
// in-process native engine.
//
// Usage: sepe-dimacs [FILE.cnf]

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "sat/solver.hpp"

namespace {

using sepe::sat::Lit;
using sepe::sat::SolveResult;
using sepe::sat::Solver;

int run(std::istream& in) {
  Solver solver;
  int declared_vars = 0;
  bool header_seen = false;
  std::vector<Lit> clause;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == 'c' || line[0] == '%') continue;
    if (line[0] == 'p') {
      std::istringstream header(line);
      std::string p, cnf;
      long clause_count = 0;
      if (!(header >> p >> cnf >> declared_vars >> clause_count) || cnf != "cnf" ||
          declared_vars < 0) {
        std::fprintf(stderr, "sepe-dimacs: malformed header: %s\n", line.c_str());
        return 1;
      }
      header_seen = true;
      while (solver.num_vars() < declared_vars) solver.new_var();
      continue;
    }
    if (!header_seen) {
      std::fprintf(stderr, "sepe-dimacs: clause before 'p cnf' header\n");
      return 1;
    }
    std::istringstream lits(line);
    long lit = 0;
    while (lits >> lit) {
      if (lit == 0) {
        solver.add_clause(clause);
        clause.clear();
        continue;
      }
      const int var = static_cast<int>(lit > 0 ? lit : -lit) - 1;
      while (solver.num_vars() <= var) solver.new_var();  // tolerate var overflow
      clause.push_back(Lit(var, lit < 0));
    }
  }
  if (!clause.empty()) solver.add_clause(clause);  // unterminated final clause

  const SolveResult result = solver.solve();
  if (result == SolveResult::Sat) {
    std::printf("s SATISFIABLE\n");
    std::string vline = "v";
    for (int v = 0; v < solver.num_vars(); ++v) {
      vline += ' ';
      if (!solver.model_value(v)) vline += '-';
      vline += std::to_string(v + 1);
      if (vline.size() > 72) {
        std::printf("%s\n", vline.c_str());
        vline = "v";
      }
    }
    std::printf("%s 0\n", vline.c_str());
    return 10;
  }
  if (result == SolveResult::Unsat) {
    std::printf("s UNSATISFIABLE\n");
    return 20;
  }
  std::printf("s UNKNOWN\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2) {
    std::fprintf(stderr, "usage: sepe-dimacs [FILE.cnf]\n");
    return 1;
  }
  if (argc == 2) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "sepe-dimacs: cannot open %s\n", argv[1]);
      return 1;
    }
    return run(file);
  }
  return run(std::cin);
}
